"""Many-worlds vectorized simulation: N scenario worlds in one simulator.

``ManyWorldsSimulator`` runs N *worlds* — independent scenarios of the same
compiled design that differ only in stimulus — in lockstep: signal values
live in a :class:`~repro.sim.store.MatrixStore` ``(n_signals, worlds)``
uint64 matrix and one vectorized tick (``repro.sim.compiler.compile_vector``)
advances every world at once as fused numpy column operations.  The shard
farm's N-process fan-out becomes intra-process SIMD — and the two compose:
``ShardSession.sweep(worlds_per_shard=M)`` packs M worlds per forked worker.

Semantics mirror :class:`~repro.sim.engine.Simulator` exactly, per world:

* the step loop (settle -> clock callbacks -> timeline record -> tick) is
  the scalar engine's, applied to all worlds at once;
* a fired ``Stop`` finishes only the worlds whose condition held: their
  pre-edge state is archived, their memory rows freeze, and the remaining
  worlds keep running;
* ``state_digest(world)`` is bit-identical to a sequential reference
  ``Simulator`` run of the same per-world stimulus on any store backend.

Breakpoint/watchpoint conditions attach through the ordinary
``repro.core.Runtime`` — against a many-worlds simulator they evaluate as
boolean masks over the scenario axis and hits report the exact set of
worlds that fired (``docs/manyworlds.md``).
"""

from __future__ import annotations

import hashlib
import random
from time import perf_counter

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via SimulatorError below
    _np = None

from ..ir.stmt import Circuit
from ..obs import make_obs
from .compiler import CompiledDesign, MemSpec, compile_design, compile_vector
from .engine import _UNSET
from .interface import HierNode, SimulatorError, SimulatorInterface
from .store import LANE_BITS, MatrixStore
from .timeline import Timeline, TimelineError


class ManyWorldsSimulator(SimulatorInterface):
    """Execute a compiled design for N stimulus scenarios in lockstep.

    Args:
        circuit: the Low-form circuit (ignored when ``compiled`` is given).
        worlds: number of scenario worlds (matrix columns).
        top_path: hierarchical prefix for the root instance.
        compiled: reuse an already-compiled design; the vector kernels are
            compiled (and cached) per ``(design, worlds)`` pair on top.
        options: a :class:`~repro.hub.api.SessionOptions` — the same record
            ``Simulator``/``ShardSession``/hub share.  ``snapshots`` /
            ``snapshot_bytes`` / ``snapshot_codec`` / ``keyframe_every`` /
            ``strict`` / ``obs`` apply; ``store`` and ``fast`` are owned by
            the matrix backend and ignored.
    """

    def __init__(
        self,
        circuit: Circuit | None,
        worlds: int,
        top_path: str | None = None,
        compiled: CompiledDesign | None = None,
        options=None,
        snapshots: int = _UNSET,
        snapshot_bytes: int | None = _UNSET,
        snapshot_codec: str | None = _UNSET,
        keyframe_every: int = _UNSET,
        strict=_UNSET,
        obs=_UNSET,
    ):
        if _np is None:
            raise SimulatorError("ManyWorldsSimulator requires numpy")
        if worlds < 1:
            raise SimulatorError("worlds must be >= 1")
        from ..hub.api import resolve_session_options

        legacy = {
            key: value
            for key, value in (
                ("snapshots", snapshots),
                ("snapshot_bytes", snapshot_bytes),
                ("snapshot_codec", snapshot_codec),
                ("keyframe_every", keyframe_every),
                ("strict", strict),
                ("obs", obs),
            )
            if value is not _UNSET
        }
        opt = resolve_session_options(options, legacy, "ManyWorldsSimulator")
        self.obs = make_obs(opt.obs, proc="manyworlds")
        if compiled is not None:
            self.design: CompiledDesign = compiled
        else:
            from ..lint.engine import GATE_OFF, gate_circuit, resolve_gate

            mode = resolve_gate(opt.strict)
            if mode != GATE_OFF:
                gate_circuit(circuit, mode, form="low", design=circuit.name)
            with self.obs.span("sim.compile", design=circuit.name):
                self.design = compile_design(circuit, top_path)
        self.worlds = worlds
        with self.obs.span("manyworlds.vectorize", worlds=str(worlds)):
            self.kernels = compile_vector(self.design, worlds)

        design = self.design
        self.store = MatrixStore(
            design.n_signals, design.wide_indices, design.state_indices, worlds
        )
        self._matrix = self.store.matrix
        self._w = self.store.wide
        self.mems = self._initial_mems()

        self._time = 0
        self._active = _np.ones(worlds, dtype=bool)
        self._n_active = worlds
        self._exit_codes: list[int | None] = [None] * worlds
        self._finish_tick: list[int | None] = [None] * worlds
        # world -> (narrow column copy, wide dict copy) captured at stop
        # time: the frozen per-world final state (pre-edge, like the scalar
        # engine, whose Stop aborts the tick before any state update).
        self._archive: dict[int, tuple] = {}
        self._callbacks: dict[int, object] = {}
        self._cb_list: tuple = ()
        self._next_cb_id = 1
        self._pending = True
        self._stat_ticks = 0
        self._stat_mask_hits = 0
        self._stat_stops = 0
        self._step_wall = 0.0
        self._printf_out: list[str] = []
        self._printf_worlds: list[list[str]] = [[] for _ in range(worlds)]

        self.timeline: Timeline | None = None
        if opt.snapshots or opt.snapshot_bytes:
            if any(spec.width > LANE_BITS for spec in design.mems):
                raise SimulatorError(
                    "many-worlds snapshots do not support >64-bit memories"
                )
            # Synthetic specs with depth*worlds words keep the timeline's
            # memory-history budget honest about the widened rows.
            mem_specs = [
                MemSpec(s.index, s.path, s.width, s.depth * worlds, None)
                for s in design.mems
            ]
            self.timeline = Timeline(
                self.store,
                self.mems,
                mem_specs,
                limit=opt.snapshots or None,
                byte_budget=opt.snapshot_bytes or None,
                codec=opt.snapshot_codec,
                keyframe_every=opt.keyframe_every,
            )

        self._install_printf()
        self.kernels.vcomb(self._matrix, self._w, self.mems)
        self._pending = False
        if self.obs.metrics is not None:
            self.obs.metrics.add_collector(self._collect_metrics)

    # -- construction helpers ----------------------------------------------

    def _initial_mems(self) -> list:
        out = []
        for spec in self.design.mems:
            if spec.width <= LANE_BITS:
                mem = _np.zeros((self.worlds, spec.depth), dtype=_np.uint64)
                if spec.init:
                    mem[:, : len(spec.init)] = _np.asarray(
                        spec.init, dtype=_np.uint64
                    )
                out.append(mem)
            else:
                data = [0] * spec.depth
                if spec.init:
                    data[: len(spec.init)] = list(spec.init)
                out.append([list(data) for _ in range(self.worlds)])
        return out

    def _install_printf(self) -> None:
        parts_table = [fmt.split("{}") for fmt, _n in self.design.printf_specs]
        self._has_printf = bool(parts_table)
        if not self._has_printf:
            return
        printf_out = self._printf_out
        printf_worlds = self._printf_worlds

        def _pfk(index: int, k: int, args) -> None:
            parts = parts_table[index]
            pieces = [parts[0]]
            for i in range(1, len(parts)):
                pieces.append(str(int(args[i - 1])) if i <= len(args) else "{}")
                pieces.append(parts[i])
            text = "".join(pieces)
            printf_worlds[k].append(text)
            tagged = f"[w{k}] {text}"
            printf_out.append(tagged)
            print(tagged)

        def _pfv(index: int, mask, *cols) -> None:
            for k in mask.nonzero()[0].tolist():
                args = [
                    int(c[k]) if isinstance(c, _np.ndarray) else int(c)
                    for c in cols
                ]
                _pfk(index, k, args)

        # The kernel namespace is shared by every simulator on the same
        # (design, worlds) pair; re-claimed at each step entry, like the
        # scalar engine's printf dispatcher.
        self._pf_bind = (_pfv, _pfk)
        ns = self.kernels.namespace
        ns["_pfv"], ns["_pfk"] = self._pf_bind

    @property
    def printf_output(self) -> list[str]:
        """All printf lines, tagged ``[w<k>]`` per world, in fire order."""
        return self._printf_out

    def printf_output_world(self, world: int) -> list[str]:
        self._check_world(world)
        return self._printf_worlds[world]

    # -- world bookkeeping ---------------------------------------------------

    def _check_world(self, world: int) -> None:
        if not 0 <= world < self.worlds:
            raise SimulatorError(
                f"world {world} out of range (worlds={self.worlds})"
            )

    @property
    def finished(self) -> bool:
        """True when every world has finished."""
        return self._n_active == 0

    @property
    def exit_codes(self) -> list[int | None]:
        """Per-world exit code (None while a world still runs)."""
        return list(self._exit_codes)

    @property
    def finish_ticks(self) -> list[int | None]:
        """Per-world tick at which the world's ``Stop`` fired."""
        return list(self._finish_tick)

    def active_mask(self):
        """Bool array over the scenario axis: which worlds still run."""
        return self._active.copy()

    @property
    def active_worlds(self) -> tuple[int, ...]:
        return tuple(self._active.nonzero()[0].tolist())

    def _on_stop(self, code: int, mask, time: int) -> None:
        matrix = self._matrix
        wide_signals = self.store.wide_signals
        stride = self.worlds
        w = self._w
        for k in mask.nonzero()[0].tolist():
            if self._exit_codes[k] is not None:
                continue
            self._exit_codes[k] = code
            self._finish_tick[k] = time
            self._archive[k] = (
                matrix[:, k].copy(),
                {i: w[i * stride + k] for i in wide_signals},
            )
            self._n_active -= 1
            self._stat_stops += 1
        # In-place: the running vtick holds this same array as _act, so
        # later effects/memory writes this edge already see the world gone.
        self._active[mask] = False

    # -- settling / stepping -------------------------------------------------

    def _settle(self) -> None:
        if self._pending:
            self._pending = False
            self.kernels.vcomb(self._matrix, self._w, self.mems)

    def flush(self) -> None:
        """Settle pending pokes / deferred tick activity now."""
        self._settle()

    def step(self, cycles: int = 1) -> None:
        """Advance every still-active world by ``cycles`` clock posedges."""
        if self._has_printf:
            ns = self.kernels.namespace
            ns["_pfv"], ns["_pfk"] = self._pf_bind
        t_start = perf_counter()
        v, w, m = self._matrix, self._w, self.mems
        kern = self.kernels
        cb_list = self._cb_list
        timeline = self.timeline
        journal = timeline is not None and timeline.snap_mems
        vtick = kern.vtick_journal if journal else kern.vtick
        jw = timeline.mem_written.add if journal else None
        act = self._active
        stop = self._on_stop
        for _ in range(cycles):
            if self._n_active == 0:
                break
            self._settle()
            if cb_list:
                for fn in cb_list:
                    fn(self)
                cb_list = self._cb_list  # callbacks may attach/detach
                self._settle()
            if timeline is not None:
                timeline.record(self._time)
            if journal:
                vtick(v, w, m, self._time, act, stop, jw)
            else:
                vtick(v, w, m, self._time, act, stop)
            self._pending = True
            self._time += 1
            self._stat_ticks += 1
        # Post-edge comb values settle lazily at the next read or step:
        # peek/peek_worlds/state_digest/flush all call _settle() first, so
        # eagerly settling here would double every cycle's vcomb cost.
        self._step_wall += perf_counter() - t_start

    def run(self, max_cycles: int = 1_000_000) -> list[int | None]:
        """Run until every world stops or ``max_cycles`` elapse.  Returns
        the per-world exit codes (None for worlds that timed out)."""
        budget = max_cycles
        while budget > 0 and self._n_active:
            chunk = min(budget, 1024)
            self.step(chunk)
            budget -= chunk
        return self.exit_codes

    def reset(self, cycles: int = 1) -> None:
        """Assert reset in every world for ``cycles``, then deassert."""
        ridx = self.design.reset_index
        self._matrix[ridx] = 1
        self._pending = True
        self.step(cycles)
        self._matrix[ridx] = 0
        self._pending = True

    # -- pokes / peeks -------------------------------------------------------

    def _input_index(self, name: str) -> int:
        idx = self.design.top_inputs.get(name)
        if idx is None:
            idx = self.design.signal_index.get(name)
        if idx is None:
            raise SimulatorError(f"no such input {name!r}")
        return idx

    def _signal_index(self, name: str) -> int:
        root = self.design.hierarchy.path
        idx = self.design.signal_index.get(name)
        if idx is None:
            idx = self.design.signal_index.get(f"{root}.{name}")
        if idx is None:
            raise SimulatorError(f"no such signal {name!r}")
        return idx

    def _drive_all(self, idx: int, value: int) -> None:
        width = self.design.signals[idx].width
        value &= (1 << width) - 1
        if idx in self.store.wide_signals:
            stride = self.worlds
            for k in range(stride):
                self._w[idx * stride + k] = value
        else:
            self._matrix[idx] = value
        self._pending = True

    def poke(self, name: str, value: int) -> None:
        """Drive a top-level input to the same value in every world."""
        self._drive_all(self._input_index(name), value)

    def poke_world(self, name: str, world: int, value: int) -> None:
        """Drive a top-level input in one world only."""
        idx = self._input_index(name)
        self._check_world(world)
        width = self.design.signals[idx].width
        value &= (1 << width) - 1
        if idx in self.store.wide_signals:
            self._w[idx * self.worlds + world] = value
        else:
            self._matrix[idx, world] = value
        self._pending = True

    def poke_worlds(self, name: str, values) -> None:
        """Drive a top-level input with one value per world."""
        idx = self._input_index(name)
        values = list(values)
        if len(values) != self.worlds:
            raise SimulatorError(
                f"poke_worlds needs {self.worlds} values, got {len(values)}"
            )
        width = self.design.signals[idx].width
        mask = (1 << width) - 1
        if idx in self.store.wide_signals:
            stride = self.worlds
            for k, val in enumerate(values):
                self._w[idx * stride + k] = int(val) & mask
        else:
            # Slice-assign from a python list: numpy converts it in C,
            # several times faster than fromiter over a generator here.
            self._matrix[idx, :] = [int(v) & mask for v in values]
        self._pending = True

    def _read_lane(self, idx: int, k: int) -> int:
        if self._exit_codes[k] is not None:
            narrow, wide = self._archive[k]
            if idx in self.store.wide_signals:
                return wide[idx]
            return int(narrow[idx])
        if idx in self.store.wide_signals:
            return self._w[idx * self.worlds + k]
        return int(self._matrix[idx, k])

    def peek(self, name: str, world: int = 0) -> int:
        """One world's settled value of a signal (finished worlds answer
        from their archived final state)."""
        self._settle()
        idx = self._signal_index(name)
        self._check_world(world)
        return self._read_lane(idx, world)

    def peek_worlds(self, name: str) -> list[int]:
        """The signal's settled value in every world."""
        self._settle()
        idx = self._signal_index(name)
        return [self._read_lane(idx, k) for k in range(self.worlds)]

    def peek_mem(self, path: str, addr: int, world: int = 0) -> int:
        design = self.design
        mi = design.mem_index.get(path)
        if mi is None:
            mi = design.mem_index.get(f"{design.hierarchy.path}.{path}")
        if mi is None:
            raise SimulatorError(f"no such memory {path!r}")
        self._check_world(world)
        mem = self.mems[mi]
        a = addr % design.mems[mi].depth
        if isinstance(mem, list):
            return mem[world][a]
        return int(mem[world, a])

    # -- state fingerprinting ------------------------------------------------

    def state_digest(self, world: int) -> str:
        """One world's state fingerprint — bit-identical to
        ``Simulator.state_digest()`` of a sequential reference run with the
        same per-world stimulus, on every store backend."""
        self._settle()
        self._check_world(world)
        if self._exit_codes[world] is not None:
            narrow, wide = self._archive[world]
            data = narrow.tobytes()
            if self.store.wide_signals:
                data += repr(sorted(wide.items())).encode()
        else:
            data = self.store.digest_bytes_world(world)
        h = hashlib.sha1(data)
        for spec, mem in zip(self.design.mems, self.mems, strict=False):
            if spec.width <= LANE_BITS:
                h.update(mem[world].tobytes())
            else:
                h.update(repr(mem[world]).encode())
        return h.hexdigest()

    # -- observability -------------------------------------------------------

    def note_mask_hit(self, n: int = 1) -> None:
        """Count per-world breakpoint/watchpoint mask hits (fed by the
        runtime's mask-condition paths; surfaces in repro.obs metrics)."""
        self._stat_mask_hits += n

    def stats(self) -> dict:
        out = {
            "worlds": self.worlds,
            "active_worlds": int(self._n_active),
            "ticks": self._stat_ticks,
            "world_cycles": self._stat_ticks * self.worlds,
            "mask_hits": self._stat_mask_hits,
            "stops": self._stat_stops,
            "vector_statements": self.kernels.n_vector,
            "scalar_statements": self.kernels.n_scalar,
            "wall_s": self._step_wall,
            "printfs": len(self._printf_out),
        }
        if self.timeline is not None:
            out["timeline_entries"] = len(self.timeline)
            out["snapshot_bytes"] = self.timeline.nbytes
        return out

    def _collect_metrics(self, reg) -> None:
        s = self.stats()
        reg.gauge("manyworlds_worlds", "Scenario worlds in the matrix").set(
            s["worlds"]
        )
        reg.gauge(
            "manyworlds_active_worlds", "Worlds still running"
        ).set(s["active_worlds"])
        reg.counter(
            "manyworlds_ticks_total", "Vectorized clock edges"
        ).set_total(s["ticks"])
        reg.counter(
            "manyworlds_world_cycles_total", "Aggregate world-cycles advanced"
        ).set_total(s["world_cycles"])
        reg.counter(
            "manyworlds_mask_hits_total",
            "Per-world breakpoint/watchpoint mask hits",
        ).set_total(s["mask_hits"])
        reg.counter(
            "manyworlds_stops_total", "Worlds finished by a Stop"
        ).set_total(s["stops"])
        if s["wall_s"] > 0:
            reg.gauge(
                "manyworlds_worlds_per_second",
                "Aggregate world-cycles per second of stepping",
            ).set(s["world_cycles"] / s["wall_s"])

    # -- SimulatorInterface --------------------------------------------------

    def get_value(self, path: str) -> int:
        """World 0's value (the interface contract is scalar); per-world
        reads go through :meth:`peek`/:meth:`peek_worlds`."""
        self._settle()
        idx = self.design.signal_index.get(path)
        if idx is None:
            raise SimulatorError(f"no such signal {path!r}")
        return self._read_lane(idx, 0)

    def set_value(self, path: str, value: int) -> None:
        idx = self.design.signal_index.get(path)
        if idx is None:
            raise SimulatorError(f"no such signal {path!r}")
        self._drive_all(idx, value)

    @property
    def can_set_value(self) -> bool:
        return True

    def hierarchy(self) -> HierNode:
        return self.design.hierarchy

    def clock_name(self) -> str:
        return self.design.signals[self.design.clock_index].path

    def add_clock_callback(self, fn) -> int:
        cb_id = self._next_cb_id
        self._next_cb_id += 1
        self._callbacks[cb_id] = fn
        self._cb_list = tuple(self._callbacks.values())
        return cb_id

    def remove_clock_callback(self, cb_id: int) -> None:
        self._callbacks.pop(cb_id, None)
        self._cb_list = tuple(self._callbacks.values())

    def get_time(self) -> int:
        return self._time

    # -- time travel ---------------------------------------------------------

    @property
    def can_set_time(self) -> bool:
        return self.timeline is not None

    def _apply_set_time(self, time: int) -> None:
        if self.timeline is None:
            raise TimelineError(
                "time travel disabled: construct with snapshots=N "
                "or snapshot_bytes=N"
            )
        if self._n_active != self.worlds:
            # A finished world's live column keeps drifting (only its
            # archive is authoritative), so recorded history past the
            # first stop is not a valid all-worlds state.
            raise SimulatorError(
                "many-worlds time travel with finished worlds is unsupported"
            )
        self.timeline.restore(time)
        self._time = time
        self._pending = True
        self._settle()

    def _retain_current_time(self):
        self._settle()
        if self._time not in self.timeline:
            self.timeline.record(self._time, evict=False)
        return None


def make_sweep_stimulus(sim: ManyWorldsSimulator, seeds, overrides=None):
    """Per-world random stimulus honoring the shard farm's seed contract.

    World ``k`` draws from ``random.Random(seeds[k])`` in sorted-input
    order — the exact sequence ``repro.shard.worker.make_stimulus`` feeds a
    sequential run with ``seed=seeds[k]`` — so per-world digests match the
    corresponding shard runs bit for bit.  ``overrides`` names inputs held
    constant (poke them yourself, as shard specs do).
    """
    seeds = list(seeds)
    if len(seeds) != sim.worlds:
        raise SimulatorError(
            f"need {sim.worlds} seeds, got {len(seeds)}"
        )
    design = sim.design
    skip = set(overrides or ())
    for idx in (design.clock_index, design.reset_index):
        skip.add(design.signals[idx].name)
    inputs = [
        (name, design.signals[idx].width)
        for name, idx in sorted(design.top_inputs.items())
        if name not in skip
    ]
    rngs = [random.Random(s) for s in seeds]

    def stimulus(s, _cycle: int) -> None:
        for name, width in inputs:
            s.poke_worlds(name, [rng.getrandbits(width) for rng in rngs])

    return stimulus
