"""Compile a Low-form circuit into executable Python.

The design hierarchy is flattened into one global signal table (hierarchical
paths like ``Top.fpu.dcmp.io_a``), combinational assignments are
topologically sorted, and two Python functions are generated with ``exec``:

* ``comb(v, w, m)``  — settle all combinational logic (one pass, zero-delay);
* ``tick(v, w, m)``  — fire stops/printfs, apply memory writes, then update
  all registers two-phase.

``v`` is the *narrow* value buffer — one 64-bit lane per signal, pluggable
storage (``repro.sim.store``); ``w`` is the overflow dict for signals wider
than one lane, selected statically per signal at codegen time so the common
all-narrow design never touches it; ``m`` is the list of memory arrays.

Two further ``tick`` variants serve the engine's fast path: a *journaling*
variant reports every memory word it writes (delta snapshots), and an
*activity-tracked* variant additionally reports which registers actually
changed on the edge — the engine then re-settles only the changed-register
fanout instead of the full state cone (Verilator-style activity tracking).

This mirrors how compiled simulators (Verilator) work and keeps the
per-cycle cost low enough that the hgdb callback overhead (paper Fig. 5) is
measurable against realistic simulation work.

The generated code must agree with ``repro.ir.eval.eval_prim`` — property
tests enforce it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.eval import literal_raw
from ..ir.expr import Expr, Literal, MemRead, PrimOp, Ref, SubField
from ..ir.stmt import (
    Circuit,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    Printf,
    Stop,
)
from ..ir.types import SIntType
from .interface import HierNode, SignalInfo, SimulationFinished, SimulatorError
from .store import LANE_BITS


class CombLoopError(SimulatorError):
    """Raised when the design contains a combinational cycle."""


def _lane_expr(index: int, wide_indices) -> str:
    """The buffer expression a signal is stored in: one 64-bit lane of the
    narrow buffer (``v``), or the wide overflow dict (``w``) for signals
    wider than one lane.  The single source of truth for the lane layout —
    every code generator goes through it."""
    return f"w[{index}]" if index in wide_indices else f"v[{index}]"


@dataclass(slots=True)
class RegisterSpec:
    index: int
    width: int
    next_code: str | None
    reset_index: int | None
    init_code: str | None


@dataclass(slots=True)
class MemSpec:
    index: int
    path: str
    width: int
    depth: int
    init: tuple[int, ...] | None


@dataclass(slots=True)
class CompiledDesign:
    """Everything the engine needs to run the flattened design.

    Beyond the monolithic ``comb``/``tick`` functions (the reference path),
    the design carries enough per-assignment metadata — topo order, dependency
    sets, levelized blocks — to compile *fanout cones*: for any set of changed
    signals, a function that re-evaluates only the affected assignments in
    topo order.  Cones are computed and compiled lazily and cached, so a
    poke-heavy testbench pays for each distinct stimulus signal once.
    """

    circuit: Circuit
    signal_index: dict[str, int]
    signals: list[SignalInfo]
    mems: list[MemSpec]
    registers: list[RegisterSpec]
    comb: object                 # comb(v, w, m) -> None
    tick: object                 # tick(v, w, m, time) -> None
    comb_source: str
    tick_source: str
    hierarchy: HierNode
    clock_index: int
    reset_index: int
    top_inputs: dict[str, int]   # local input name -> signal index
    printf_specs: list[tuple[str, int]] = field(default_factory=list)
    mem_index: dict[str, int] = field(default_factory=dict)
    # Signals wider than one 64-bit storage lane: generated code reads and
    # writes them through the wide overflow dict (``w``), never ``v``.
    wide_indices: frozenset = frozenset()
    # journaling tick variant: tick_journal(v, w, m, time, _jw) additionally
    # calls _jw((mem_index, addr)) for every memory word it writes.
    tick_journal: object = None
    tick_journal_source: str = ""
    # activity-tracked tick variants: call _ch(index) for every register
    # whose value actually changed on the edge and return truthy when any
    # memory word was written — the engine re-settles only that activity.
    tick_act: object = None
    tick_act_source: str = ""
    tick_act_journal: object = None
    tick_act_journal_source: str = ""
    # Per-assignment metadata, aligned with the levelized topo order.
    order_targets: list[int] = field(default_factory=list)
    order_code: list[str] = field(default_factory=list)
    order_deps: list[frozenset] = field(default_factory=list)
    order_reads_mem: list[bool] = field(default_factory=list)
    # Level structure of the schedule: same-level assignments are mutually
    # independent.  Introspection / future multi-seed cone batching (see
    # ROADMAP); the cone machinery itself only relies on the level *sort*.
    order_level: list[int] = field(default_factory=list)
    level_blocks: list[tuple[int, int]] = field(default_factory=list)
    state_indices: tuple[int, ...] = ()
    namespace: dict = field(default_factory=dict)
    _pos_of_target: dict[int, int] = field(default_factory=dict)
    _tick_cone: object = False   # False = not yet built (None = empty cone)
    # Merged-cone machinery: per-seed fanout bitmasks over schedule
    # positions, a mask-keyed cache of compiled merged cones, and the
    # fanout-closed cone of all memory-reading assignments.
    _seed_masks: dict = field(default_factory=dict)
    _mask_cones: dict = field(default_factory=dict)
    _mem_read_mask: int = -1     # -1 = not yet computed
    _tick_mask: int = -1         # -1 = not yet computed
    _pos_fns: list | None = None
    # Always-on cone-cache stats: plain ints bumped on the hot path (one
    # increment per settle — cheaper than any enabled-guard) and read
    # lazily by repro.obs collectors / Simulator.stats().
    stat_cone_hits: int = 0
    stat_cone_misses: int = 0
    stat_cone_fallbacks: int = 0

    @property
    def n_signals(self) -> int:
        return len(self.signals)

    def lane_target(self, index: int) -> str:
        """Storage expression for a signal (see :func:`_lane_expr`)."""
        return _lane_expr(index, self.wide_indices)

    def initial_mems(self) -> list[list[int]]:
        out = []
        for spec in self.mems:
            data = [0] * spec.depth
            if spec.init:
                data[: len(spec.init)] = list(spec.init)
            out.append(data)
        return out

    # -- fanout cones (the dirty-set fast path) ---------------------------

    def cone_positions(
        self, seeds, include_mem_reads: bool = False
    ) -> tuple[int, ...]:
        """Topo-ordered assignment positions affected when ``seeds`` change.

        A seed that is itself combinationally driven includes its own driver
        (matching the reference path, where a forced value is recomputed —
        and thus restored — by the very next full ``comb``).  With
        ``include_mem_reads`` every memory-reading assignment is included as
        well (memory contents may have changed under it).
        """
        affected = set(seeds)
        pos_of = self._pos_of_target
        forced = {pos_of[s] for s in affected if s in pos_of}
        targets, deps = self.order_targets, self.order_deps
        reads_mem = self.order_reads_mem
        out = []
        for p in range(len(targets)):
            if (
                p in forced
                or (include_mem_reads and reads_mem[p])
                or not affected.isdisjoint(deps[p])
            ):
                out.append(p)
                affected.add(targets[p])
        return tuple(out)

    def compile_cone(self, positions) -> object:
        """Compile a cone (topo-ordered positions) into ``fn(v, w, m)``.

        Positions index into the levelized schedule, so emitting them in
        order yields a faithful subset of ``comb``.  Returns None for an
        empty cone.
        """
        if not positions:
            return None
        lines = ["def cone(v, w, m):"]
        lines.extend(
            f"    {self.lane_target(self.order_targets[p])} = {self.order_code[p]}"
            for p in positions
        )
        ns = dict(self.namespace)
        exec(compile("\n".join(lines), "<repro-sim-cone>", "exec"), ns)
        return ns["cone"]

    def tick_settle(self, v, w, m) -> None:
        """Re-settle after a clock edge: the cone of every register output
        plus every memory-reading assignment."""
        fn = self._tick_cone
        if fn is False:
            seeds = {spec.index for spec in self.registers}
            fn = self.compile_cone(
                self.cone_positions(seeds, include_mem_reads=True)
            )
            self._tick_cone = fn
        if fn is not None:
            fn(v, w, m)

    # -- merged cones (the lazy dirty-set / activity-tracked fast path) ----

    #: Distinct merged-cone functions cached before falling back to
    #: sequential per-seed cones (bounds exec-compile cost on designs whose
    #: per-cycle activity patterns never repeat).
    MASK_CONE_CAP = 512

    def seed_mask(self, seed: int) -> int:
        """Bitmask (over schedule positions) of one signal's fanout cone."""
        mask = self._seed_masks.get(seed)
        if mask is None:
            mask = 0
            for p in self.cone_positions((seed,)):
                mask |= 1 << p
            self._seed_masks[seed] = mask
        return mask

    def mem_read_mask(self) -> int:
        """Bitmask of the fanout-closed memory-reading cone."""
        if self._mem_read_mask < 0:
            mask = 0
            for p in self.cone_positions((), include_mem_reads=True):
                mask |= 1 << p
            self._mem_read_mask = mask
        return self._mem_read_mask

    def settle_seeds(self, v, w, m, seeds, include_mem_reads: bool = False) -> None:
        """Re-settle the *union* cone of every changed seed in one pass.

        N driven inputs (or N changed registers) cost one levelized cone
        evaluation: the per-seed fanout masks are OR-ed and the merged mask
        keys a cache of compiled cone functions.  The union of per-seed
        cones is exactly the cone of the seed set (transitive fanout is
        monotone), and ascending positions remain a valid topo order.
        """
        mask = self.mem_read_mask() if include_mem_reads else 0
        for s in seeds:
            mask |= self.seed_mask(s)
        self._run_mask(v, w, m, mask)

    def settle_tick(self, v, w, m, changed_regs, mem_written: bool) -> None:
        """Activity-driven settle after a clock edge.

        Quiet edges (few registers changed) evaluate exactly the changed
        registers' merged cone.  Busy edges — where the activity already
        covers most of the full tick cone — run the single precomputed
        tick cone instead: a busy design (a CPU retiring instructions)
        produces a *different* activity pattern almost every cycle, and
        minting a compiled cone variant per pattern costs far more than
        the few skipped statements would save.
        """
        mask = self.mem_read_mask() if mem_written else 0
        for s in changed_regs:
            mask |= self.seed_mask(s)
        if not mask:
            return
        tick_mask = self._tick_mask
        if tick_mask < 0:
            tm = self.mem_read_mask()
            for spec in self.registers:
                tm |= self.seed_mask(spec.index)
            tick_mask = self._tick_mask = tm
        if 2 * mask.bit_count() >= tick_mask.bit_count():
            self.tick_settle(v, w, m)
            return
        self._run_mask(v, w, m, mask)

    def _run_mask(self, v, w, m, mask: int) -> None:
        if not mask:
            return
        fn = self._mask_cones.get(mask)
        if fn is not None:
            self.stat_cone_hits += 1
            fn(v, w, m)
            return
        if len(self._mask_cones) < self.MASK_CONE_CAP:
            self.stat_cone_misses += 1
            fn = self.compile_cone(self._mask_positions(mask))
            self._mask_cones[mask] = fn
            fn(v, w, m)
            return
        # Cache saturated (pathological activity variety that never
        # repeats): execute the merged cone through per-statement thunks —
        # one-time setup, no recurring exec-compiles, cost still linear in
        # the cone size rather than the full schedule.
        self.stat_cone_fallbacks += 1
        fns = self._pos_fns
        if fns is None:
            fns = self._build_pos_fns()
        p = 0
        while mask:
            if mask & 1:
                fns[p](v, w, m)
            mask >>= 1
            p += 1

    def _build_pos_fns(self) -> list:
        src = []
        ordered = zip(self.order_targets, self.order_code, strict=False)
        for i, (t, code) in enumerate(ordered):
            src.append(f"def _p{i}(v, w, m):\n    {self.lane_target(t)} = {code}")
        ns = dict(self.namespace)
        exec(compile("\n".join(src), "<repro-sim-pos>", "exec"), ns)
        fns = [ns[f"_p{i}"] for i in range(len(self.order_targets))]
        self._pos_fns = fns
        return fns

    @staticmethod
    def _mask_positions(mask: int) -> tuple[int, ...]:
        out = []
        p = 0
        while mask:
            if mask & 1:
                out.append(p)
            mask >>= 1
            p += 1
        return tuple(out)


def _sg(x: int, w: int) -> int:
    return x - (1 << w) if x & (1 << (w - 1)) else x


def _div(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem(a: int, b: int) -> int:
    if b == 0:
        return 0
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def _mins(x: int) -> int:
    return x if x < 256 else 256


class _Codegen:
    """Generates the raw/interpreted value code for IR expressions within
    one flattened instance context."""

    def __init__(
        self,
        path: str,
        signal_index: dict[str, int],
        mem_index: dict[str, int],
        mems: list[MemSpec],
        wide: frozenset,
    ):
        self.path = path
        self.signal_index = signal_index
        self.mem_index = mem_index
        self.mems = mems
        self.wide = wide

    def sig(self, local: str) -> int:
        key = f"{self.path}.{local}"
        idx = self.signal_index.get(key)
        if idx is None:
            raise SimulatorError(f"unknown signal {key}")
        return idx

    def lane(self, idx: int) -> str:
        """Storage expression for a signal (see :func:`_lane_expr`)."""
        return _lane_expr(idx, self.wide)

    def raw(self, e: Expr) -> str:
        if isinstance(e, Ref):
            return self.lane(self.sig(e.name))
        if isinstance(e, Literal):
            return str(literal_raw(e))
        if isinstance(e, SubField):
            inst = e.expr.name  # type: ignore[union-attr]
            return self.lane(self.sig(f"{inst}.{e.name}"))
        if isinstance(e, MemRead):
            mi = self.mem_index[f"{self.path}.{e.mem}"]
            depth = self.mems[mi].depth
            return f"m[{mi}][{self.raw(e.addr)} % {depth}]"
        if isinstance(e, PrimOp):
            return self._prim(e)
        raise SimulatorError(f"cannot compile expression {e!r}")

    def interp(self, e: Expr) -> str:
        if isinstance(e, Literal):
            return str(e.value)  # SInt literals are stored signed already
        if isinstance(e.typ, SIntType):
            return f"_sg({self.raw(e)}, {e.typ.width})"
        return self.raw(e)

    def _mask(self, code: str, e: PrimOp) -> str:
        return f"(({code}) & {(1 << e.typ.bit_width()) - 1})"

    def _prim(self, e: PrimOp) -> str:
        op = e.op
        rw = e.typ.bit_width()
        M = (1 << rw) - 1
        a = e.args
        if op in ("add", "sub", "mul"):
            sym = {"add": "+", "sub": "-", "mul": "*"}[op]
            return f"(({self.interp(a[0])} {sym} {self.interp(a[1])}) & {M})"
        if op == "div":
            return f"(_div({self.interp(a[0])}, {self.interp(a[1])}) & {M})"
        if op == "rem":
            return f"(_rem({self.interp(a[0])}, {self.interp(a[1])}) & {M})"
        if op in ("lt", "leq", "gt", "geq", "eq", "neq"):
            sym = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=", "eq": "==", "neq": "!="}[op]
            return f"(1 if {self.interp(a[0])} {sym} {self.interp(a[1])} else 0)"
        if op in ("and", "or", "xor"):
            sym = {"and": "&", "or": "|", "xor": "^"}[op]
            return f"(({self.interp(a[0])} {sym} {self.interp(a[1])}) & {M})"
        if op == "not":
            return f"((~{self.interp(a[0])}) & {M})"
        if op == "neg":
            return f"((-{self.interp(a[0])}) & {M})"
        if op == "andr":
            w = a[0].typ.bit_width()
            return f"(1 if {self.raw(a[0])} == {(1 << w) - 1} else 0)"
        if op == "orr":
            return f"(1 if {self.raw(a[0])} != 0 else 0)"
        if op == "xorr":
            return f"(({self.raw(a[0])}).bit_count() & 1)"
        if op == "cat":
            wb = a[1].typ.bit_width()
            return f"(({self.raw(a[0])} << {wb}) | {self.raw(a[1])})"
        if op == "bits":
            hi, lo = e.params
            m = (1 << (hi - lo + 1)) - 1
            if lo == 0:
                return f"({self.raw(a[0])} & {m})"
            return f"(({self.raw(a[0])} >> {lo}) & {m})"
        if op == "pad":
            return f"({self.interp(a[0])} & {M})"
        if op == "shl":
            return f"(({self.interp(a[0])} << {e.params[0]}) & {M})"
        if op == "shr":
            return f"(({self.interp(a[0])} >> {e.params[0]}) & {M})"
        if op == "dshl":
            return f"(({self.interp(a[0])} << _mins({self.raw(a[1])})) & {M})"
        if op == "dshr":
            return f"(({self.interp(a[0])} >> _mins({self.raw(a[1])})) & {M})"
        if op == "mux":
            t = f"({self.interp(a[1])} & {M})"
            f_ = f"({self.interp(a[2])} & {M})"
            return f"({t} if {self.raw(a[0])} else {f_})"
        if op in ("as_uint", "as_sint"):
            return self.raw(a[0])
        raise SimulatorError(f"cannot compile op {op!r}")


def _expr_reads_mem(e: Expr) -> bool:
    """Whether an expression reads any memory (its value can change on a
    clock edge even when no dependency signal changed)."""
    if isinstance(e, MemRead):
        return True
    if isinstance(e, PrimOp):
        return any(_expr_reads_mem(a) for a in e.args)
    return False


def _expr_dep_keys(e: Expr, path: str) -> set[str]:
    """Full-path signal names an expression reads (memories excluded —
    their content is state, but read addresses are dependencies)."""
    out: set[str] = set()

    def walk(x: Expr) -> None:
        if isinstance(x, Ref):
            out.add(f"{path}.{x.name}")
        elif isinstance(x, SubField):
            inst = x.expr.name  # type: ignore[union-attr]
            out.add(f"{path}.{inst}.{x.name}")
        elif isinstance(x, MemRead):
            walk(x.addr)
        elif isinstance(x, PrimOp):
            for a in x.args:
                walk(a)

    walk(e)
    return out


def compile_design(circuit: Circuit, top_path: str | None = None) -> CompiledDesign:
    """Flatten and compile a Low-form circuit for execution.

    ``top_path`` overrides the root instance name (defaults to the main
    module's name) — wrapping the design under a testbench-style prefix
    exercises the hierarchy-matching logic of paper Sec. 3.4.
    """
    root = top_path or circuit.main
    signal_index: dict[str, int] = {}
    signals: list[SignalInfo] = []
    mems: list[MemSpec] = []
    mem_index: dict[str, int] = {}
    assignments: list[tuple[int, str, str]] = []  # (target, code, target_path)
    registers: list[RegisterSpec] = []
    stop_lines: list[str] = []
    mem_ops: list[tuple[str, str, str, int, int]] = []  # (en, addr, data, mi, depth)
    printf_specs: list[tuple[str, int]] = []
    reads_mem: dict[int, bool] = {}

    def add_signal(path: str, width: int, kind: str, signed: bool, local: str) -> int:
        idx = len(signals)
        signal_index[path] = idx
        signals.append(SignalInfo(local, path, width, kind, signed))
        return idx

    # Pass 1: declare all signals instance by instance (so cross-hierarchy
    # connects resolve), building the hierarchy tree as we go.
    instances: list[tuple[str, str]] = []

    def declare(path: str, mod_name: str) -> HierNode:
        instances.append((path, mod_name))
        m = circuit.modules[mod_name]
        node = HierNode(path.rsplit(".", 1)[-1], path, mod_name)
        for p in m.ports:
            kind = p.direction
            signed = isinstance(p.typ, SIntType)
            idx = add_signal(f"{path}.{p.name}", p.typ.bit_width(), kind, signed, p.name)
            node.signals.append(signals[idx])
        for s in m.body:
            if isinstance(s, DefWire):
                idx = add_signal(
                    f"{path}.{s.name}", s.typ.bit_width(), "wire",
                    isinstance(s.typ, SIntType), s.name,
                )
                node.signals.append(signals[idx])
            elif isinstance(s, DefRegister):
                idx = add_signal(
                    f"{path}.{s.name}", s.typ.bit_width(), "reg",
                    isinstance(s.typ, SIntType), s.name,
                )
                node.signals.append(signals[idx])
            elif isinstance(s, DefNode):
                idx = add_signal(
                    f"{path}.{s.name}", s.value.typ.bit_width(), "node",
                    isinstance(s.value.typ, SIntType), s.name,
                )
                node.signals.append(signals[idx])
            elif isinstance(s, DefMemory):
                mi = len(mems)
                mems.append(
                    MemSpec(mi, f"{path}.{s.name}", s.typ.bit_width(), s.depth, s.init)
                )
                mem_index[f"{path}.{s.name}"] = mi
        for s in m.body:
            if isinstance(s, DefInstance):
                node.children.append(declare(f"{path}.{s.name}", s.module))
        return node

    hierarchy = declare(root, circuit.main)

    # Signals wider than one storage lane live in the wide overflow dict;
    # the split is static, decided here once for all generated code.
    wide_indices = frozenset(
        i for i, s in enumerate(signals) if s.width > LANE_BITS
    )

    def lane(idx: int) -> str:
        return _lane_expr(idx, wide_indices)

    # Pass 2: generate assignments / register specs / tick effects.
    dep_map: dict[int, set[int]] = {}
    assigned: set[int] = set()

    for path, mod_name in instances:
        m = circuit.modules[mod_name]
        cg = _Codegen(path, signal_index, mem_index, mems, wide_indices)
        reg_names = {s.name for s in m.body if isinstance(s, DefRegister)}
        reg_decl = {s.name: s for s in m.body if isinstance(s, DefRegister)}
        reg_next: dict[str, str] = {}

        for s in m.body:
            if isinstance(s, DefNode):
                target = cg.sig(s.name)
                assignments.append((target, cg.raw(s.value), path))
                assigned.add(target)
                reads_mem[target] = _expr_reads_mem(s.value)
                dep_map[target] = {
                    signal_index[k]
                    for k in _expr_dep_keys(s.value, path)
                    if k in signal_index
                }
            elif isinstance(s, Connect):
                if isinstance(s.loc, Ref) and s.loc.name in reg_names:
                    reg_next[s.loc.name] = cg.raw(s.expr)
                    continue
                if isinstance(s.loc, Ref):
                    target = cg.sig(s.loc.name)
                else:  # SubField -> instance input port
                    inst = s.loc.expr.name  # type: ignore[union-attr]
                    target = cg.sig(f"{inst}.{s.loc.name}")
                assignments.append((target, cg.raw(s.expr), path))
                assigned.add(target)
                reads_mem[target] = _expr_reads_mem(s.expr)
                dep_map[target] = {
                    signal_index[k]
                    for k in _expr_dep_keys(s.expr, path)
                    if k in signal_index
                }
            elif isinstance(s, MemWrite):
                mi = mem_index[f"{path}.{s.mem}"]
                depth = mems[mi].depth
                mem_ops.append((cg.raw(s.en), cg.raw(s.addr), cg.raw(s.data), mi, depth))
            elif isinstance(s, Stop):
                stop_lines.append(
                    f"    if {cg.raw(s.cond)}: "
                    f"raise SimulationFinished({s.exit_code}, time)"
                )
            elif isinstance(s, Printf):
                pi = len(printf_specs)
                printf_specs.append((s.fmt, len(s.args)))
                args = "".join(f", {cg.raw(a)}" for a in s.args)
                stop_lines.append(f"    if {cg.raw(s.cond)}: _pf({pi}{args})")

        for name, code in reg_next.items():
            decl = reg_decl[name]
            reset_idx = None
            init_code = None
            if decl.reset is not None and decl.init is not None:
                reset_idx = signal_index[next(iter(_expr_dep_keys(decl.reset, path)))]
                init_code = cg.raw(decl.init)
            registers.append(
                RegisterSpec(cg.sig(name), decl.typ.bit_width(), code, reset_idx, init_code)
            )
        for name, decl in reg_decl.items():
            if name not in reg_next and decl.reset is not None and decl.init is not None:
                reset_idx = signal_index[next(iter(_expr_dep_keys(decl.reset, path)))]
                registers.append(
                    RegisterSpec(
                        cg.sig(name), decl.typ.bit_width(),
                        None, reset_idx, cg.raw(decl.init),
                    )
                )

    # Topological sort of combinational assignments, then levelize: each
    # assignment's level is one past the deepest combinational input it
    # reads.  Re-ordering by level is still a valid topo order (same-level
    # assignments are independent) and partitions the schedule into blocks.
    order = _topo_sort(assignments, dep_map, assigned, signals)
    level_of: dict[int, int] = {}
    for target, _code, _path in order:
        comb_deps = [d for d in dep_map[target] if d in assigned and d != target]
        level_of[target] = 1 + max((level_of[d] for d in comb_deps), default=-1)
    order.sort(key=lambda a: level_of[a[0]])

    order_targets = [t for t, _c, _p in order]
    order_code = [c for _t, c, _p in order]
    order_deps = [frozenset(dep_map[t]) for t in order_targets]
    order_reads_mem = [reads_mem[t] for t in order_targets]
    order_level = [level_of[t] for t in order_targets]
    level_blocks: list[tuple[int, int]] = []
    start = 0
    for i in range(1, len(order_level) + 1):
        if i == len(order_level) or order_level[i] != order_level[start]:
            level_blocks.append((start, i))
            start = i

    comb_lines = ["def comb(v, w, m):"]
    if not order:
        comb_lines.append("    pass")
    for target, code, _path in order:
        comb_lines.append(f"    {lane(target)} = {code}")
    comb_source = "\n".join(comb_lines)

    def _mem_block(journal: bool, activity: bool) -> list[str]:
        out = []
        for wi, (en, addr, data, mi, depth) in enumerate(mem_ops):
            if journal:
                lines = [
                    f"    if {en}:",
                    f"        _ja{wi} = {addr} % {depth}",
                    f"        _jw(({mi}, _ja{wi}))",
                    f"        m[{mi}][_ja{wi}] = {data}",
                ]
                if activity:
                    lines.insert(1, "        _mw = 1")
                out.append("\n".join(lines))
            elif activity:
                out.append(
                    f"    if {en}:\n"
                    f"        _mw = 1\n"
                    f"        m[{mi}][{addr} % {depth}] = {data}"
                )
            else:
                out.append(f"    if {en}: m[{mi}][{addr} % {depth}] = {data}")
        return out

    def _tick_source(header: str, journal: bool, activity: bool) -> str:
        body = [header]
        # Order matters: stops/printfs observe the stable pre-edge state;
        # register next-values are computed before memory writes so they
        # read pre-edge memory contents; stores happen last (two-phase
        # update).
        body.extend(stop_lines)
        if activity:
            body.append("    _mw = 0")
        for i, spec in enumerate(registers):
            if spec.next_code is not None:
                body.append(f"    _t{i} = {spec.next_code}")
        body.extend(_mem_block(journal, activity))
        for i, spec in enumerate(registers):
            slot = lane(spec.index)
            if activity:
                # Store-and-report only on an actual change: the engine
                # re-settles just the reported registers' fanout.
                if spec.next_code is not None:
                    if spec.reset_index is not None:
                        body.append(
                            f"    _n{i} = {spec.init_code} "
                            f"if {lane(spec.reset_index)} else _t{i}"
                        )
                    else:
                        body.append(f"    _n{i} = _t{i}")
                    body.append(
                        f"    if {slot} != _n{i}:\n"
                        f"        {slot} = _n{i}\n"
                        f"        _ch({spec.index})"
                    )
                elif spec.reset_index is not None:
                    body.append(
                        f"    if {lane(spec.reset_index)} "
                        f"and {slot} != ({spec.init_code}):\n"
                        f"        {slot} = {spec.init_code}\n"
                        f"        _ch({spec.index})"
                    )
            elif spec.next_code is not None:
                if spec.reset_index is not None:
                    body.append(
                        f"    {slot} = {spec.init_code} "
                        f"if {lane(spec.reset_index)} else _t{i}"
                    )
                else:
                    body.append(f"    {slot} = _t{i}")
            elif spec.reset_index is not None:
                body.append(
                    f"    if {lane(spec.reset_index)}: {slot} = {spec.init_code}"
                )
        if activity:
            body.append("    return _mw")
        if len(body) == 1:
            body.append("    pass")
        return "\n".join(body)

    tick_source = _tick_source("def tick(v, w, m, time):", False, False)
    tick_journal_source = _tick_source(
        "def tick_journal(v, w, m, time, _jw):", True, False
    )
    tick_act_source = _tick_source(
        "def tick_act(v, w, m, time, _ch):", False, True
    )
    tick_act_journal_source = _tick_source(
        "def tick_act_journal(v, w, m, time, _jw, _ch):", True, True
    )

    namespace = {
        "_sg": _sg,
        "_div": _div,
        "_rem": _rem,
        "_mins": _mins,
        "SimulationFinished": SimulationFinished,
        "_pf": None,  # patched by the engine with its printf handler
    }
    exec(compile(comb_source, "<repro-sim-comb>", "exec"), namespace)
    exec(compile(tick_source, "<repro-sim-tick>", "exec"), namespace)
    exec(
        compile(tick_journal_source, "<repro-sim-tick-journal>", "exec"),
        namespace,
    )
    exec(compile(tick_act_source, "<repro-sim-tick-act>", "exec"), namespace)
    exec(
        compile(tick_act_journal_source, "<repro-sim-tick-act-journal>", "exec"),
        namespace,
    )

    main_mod = circuit.modules[circuit.main]
    top_inputs = {
        p.name: signal_index[f"{root}.{p.name}"]
        for p in main_mod.ports
        if p.direction == "input"
    }

    state_indices = tuple(
        i for i in range(len(signals)) if i not in assigned
    )

    return CompiledDesign(
        circuit=circuit,
        signal_index=signal_index,
        signals=signals,
        mems=mems,
        registers=registers,
        comb=namespace["comb"],
        tick=namespace["tick"],
        comb_source=comb_source,
        tick_source=tick_source,
        hierarchy=hierarchy,
        clock_index=signal_index[f"{root}.clock"],
        reset_index=signal_index[f"{root}.reset"],
        top_inputs=top_inputs,
        printf_specs=printf_specs,
        mem_index=mem_index,
        wide_indices=wide_indices,
        tick_journal=namespace["tick_journal"],
        tick_journal_source=tick_journal_source,
        tick_act=namespace["tick_act"],
        tick_act_source=tick_act_source,
        tick_act_journal=namespace["tick_act_journal"],
        tick_act_journal_source=tick_act_journal_source,
        order_targets=order_targets,
        order_code=order_code,
        order_deps=order_deps,
        order_reads_mem=order_reads_mem,
        order_level=order_level,
        level_blocks=level_blocks,
        state_indices=state_indices,
        namespace=namespace,
        _pos_of_target={t: p for p, t in enumerate(order_targets)},
    )


def _topo_sort(assignments, dep_map, assigned, signals):
    """Kahn's algorithm over the comb assignment graph."""
    by_target = {t: (t, code, path) for t, code, path in assignments}
    if len(by_target) != len(assignments):
        raise SimulatorError("duplicate combinational drivers (internal)")
    indeg: dict[int, int] = {}
    fanout: dict[int, list[int]] = {}
    for t, deps in dep_map.items():
        comb_deps = [d for d in deps if d in assigned and d != t]
        indeg[t] = len(comb_deps)
        for d in comb_deps:
            fanout.setdefault(d, []).append(t)
    ready = [t for t, n in indeg.items() if n == 0]
    order: list[tuple[int, str, str]] = []
    while ready:
        t = ready.pop()
        order.append(by_target[t])
        for u in fanout.get(t, ()):
            indeg[u] -= 1
            if indeg[u] == 0:
                ready.append(u)
    if len(order) != len(assignments):
        stuck = [signals[t].path for t, n in indeg.items() if n > 0]
        raise CombLoopError(
            "combinational loop involving: " + ", ".join(sorted(stuck)[:10])
        )
    return order
