"""Compile a Low-form circuit into executable Python.

The design hierarchy is flattened into one global signal table (hierarchical
paths like ``Top.fpu.dcmp.io_a``), combinational assignments are
topologically sorted, and two Python functions are generated with ``exec``:

* ``comb(v, w, m)``  — settle all combinational logic (one pass, zero-delay);
* ``tick(v, w, m)``  — fire stops/printfs, apply memory writes, then update
  all registers two-phase.

``v`` is the *narrow* value buffer — one 64-bit lane per signal, pluggable
storage (``repro.sim.store``); ``w`` is the overflow dict for signals wider
than one lane, selected statically per signal at codegen time so the common
all-narrow design never touches it; ``m`` is the list of memory arrays.

Two further ``tick`` variants serve the engine's fast path: a *journaling*
variant reports every memory word it writes (delta snapshots), and an
*activity-tracked* variant additionally reports which registers actually
changed on the edge — the engine then re-settles only the changed-register
fanout instead of the full state cone (Verilator-style activity tracking).

This mirrors how compiled simulators (Verilator) work and keeps the
per-cycle cost low enough that the hgdb callback overhead (paper Fig. 5) is
measurable against realistic simulation work.

The generated code must agree with ``repro.ir.eval.eval_prim`` — property
tests enforce it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

try:
    import numpy as _np
except ImportError:  # the vector kernels are optional, like NumpyStore
    _np = None

from ..ir.eval import literal_raw
from ..ir.expr import Expr, Literal, MemRead, PrimOp, Ref, SubField
from ..ir.stmt import (
    Circuit,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    Printf,
    Stop,
)
from ..ir.types import SIntType
from .interface import HierNode, SignalInfo, SimulationFinished, SimulatorError
from .store import LANE_BITS


class CombLoopError(SimulatorError):
    """Raised when the design contains a combinational cycle."""


def _lane_expr(index: int, wide_indices) -> str:
    """The buffer expression a signal is stored in: one 64-bit lane of the
    narrow buffer (``v``), or the wide overflow dict (``w``) for signals
    wider than one lane.  The single source of truth for the lane layout —
    every code generator goes through it."""
    return f"w[{index}]" if index in wide_indices else f"v[{index}]"


@dataclass(slots=True)
class RegisterSpec:
    index: int
    width: int
    next_code: str | None
    reset_index: int | None
    init_code: str | None


@dataclass(slots=True)
class MemSpec:
    index: int
    path: str
    width: int
    depth: int
    init: tuple[int, ...] | None


@dataclass(slots=True)
class CompiledDesign:
    """Everything the engine needs to run the flattened design.

    Beyond the monolithic ``comb``/``tick`` functions (the reference path),
    the design carries enough per-assignment metadata — topo order, dependency
    sets, levelized blocks — to compile *fanout cones*: for any set of changed
    signals, a function that re-evaluates only the affected assignments in
    topo order.  Cones are computed and compiled lazily and cached, so a
    poke-heavy testbench pays for each distinct stimulus signal once.
    """

    circuit: Circuit
    signal_index: dict[str, int]
    signals: list[SignalInfo]
    mems: list[MemSpec]
    registers: list[RegisterSpec]
    comb: object                 # comb(v, w, m) -> None
    tick: object                 # tick(v, w, m, time) -> None
    comb_source: str
    tick_source: str
    hierarchy: HierNode
    clock_index: int
    reset_index: int
    top_inputs: dict[str, int]   # local input name -> signal index
    printf_specs: list[tuple[str, int]] = field(default_factory=list)
    mem_index: dict[str, int] = field(default_factory=dict)
    # Signals wider than one 64-bit storage lane: generated code reads and
    # writes them through the wide overflow dict (``w``), never ``v``.
    wide_indices: frozenset = frozenset()
    # journaling tick variant: tick_journal(v, w, m, time, _jw) additionally
    # calls _jw((mem_index, addr)) for every memory word it writes.
    tick_journal: object = None
    tick_journal_source: str = ""
    # activity-tracked tick variants: call _ch(index) for every register
    # whose value actually changed on the edge and return truthy when any
    # memory word was written — the engine re-settles only that activity.
    tick_act: object = None
    tick_act_source: str = ""
    tick_act_journal: object = None
    tick_act_journal_source: str = ""
    # Per-assignment metadata, aligned with the levelized topo order.
    order_targets: list[int] = field(default_factory=list)
    order_code: list[str] = field(default_factory=list)
    order_deps: list[frozenset] = field(default_factory=list)
    order_reads_mem: list[bool] = field(default_factory=list)
    # Level structure of the schedule: same-level assignments are mutually
    # independent.  Introspection / future multi-seed cone batching (see
    # ROADMAP); the cone machinery itself only relies on the level *sort*.
    order_level: list[int] = field(default_factory=list)
    level_blocks: list[tuple[int, int]] = field(default_factory=list)
    state_indices: tuple[int, ...] = ()
    namespace: dict = field(default_factory=dict)
    _pos_of_target: dict[int, int] = field(default_factory=dict)
    _tick_cone: object = False   # False = not yet built (None = empty cone)
    # Merged-cone machinery: per-seed fanout bitmasks over schedule
    # positions, a mask-keyed cache of compiled merged cones, and the
    # fanout-closed cone of all memory-reading assignments.
    _seed_masks: dict = field(default_factory=dict)
    _mask_cones: dict = field(default_factory=dict)
    _mem_read_mask: int = -1     # -1 = not yet computed
    _tick_mask: int = -1         # -1 = not yet computed
    _pos_fns: list | None = None
    # Always-on cone-cache stats: plain ints bumped on the hot path (one
    # increment per settle — cheaper than any enabled-guard) and read
    # lazily by repro.obs collectors / Simulator.stats().
    stat_cone_hits: int = 0
    stat_cone_misses: int = 0
    stat_cone_fallbacks: int = 0
    # Many-worlds vector kernels, cached per world count (see
    # :func:`compile_vector`).
    _vector_kernels: dict = field(default_factory=dict)

    @property
    def n_signals(self) -> int:
        return len(self.signals)

    def lane_target(self, index: int) -> str:
        """Storage expression for a signal (see :func:`_lane_expr`)."""
        return _lane_expr(index, self.wide_indices)

    def initial_mems(self) -> list[list[int]]:
        out = []
        for spec in self.mems:
            data = [0] * spec.depth
            if spec.init:
                data[: len(spec.init)] = list(spec.init)
            out.append(data)
        return out

    # -- fanout cones (the dirty-set fast path) ---------------------------

    def cone_positions(
        self, seeds, include_mem_reads: bool = False
    ) -> tuple[int, ...]:
        """Topo-ordered assignment positions affected when ``seeds`` change.

        A seed that is itself combinationally driven includes its own driver
        (matching the reference path, where a forced value is recomputed —
        and thus restored — by the very next full ``comb``).  With
        ``include_mem_reads`` every memory-reading assignment is included as
        well (memory contents may have changed under it).
        """
        affected = set(seeds)
        pos_of = self._pos_of_target
        forced = {pos_of[s] for s in affected if s in pos_of}
        targets, deps = self.order_targets, self.order_deps
        reads_mem = self.order_reads_mem
        out = []
        for p in range(len(targets)):
            if (
                p in forced
                or (include_mem_reads and reads_mem[p])
                or not affected.isdisjoint(deps[p])
            ):
                out.append(p)
                affected.add(targets[p])
        return tuple(out)

    def compile_cone(self, positions) -> object:
        """Compile a cone (topo-ordered positions) into ``fn(v, w, m)``.

        Positions index into the levelized schedule, so emitting them in
        order yields a faithful subset of ``comb``.  Returns None for an
        empty cone.
        """
        if not positions:
            return None
        lines = ["def cone(v, w, m):"]
        lines.extend(
            f"    {self.lane_target(self.order_targets[p])} = {self.order_code[p]}"
            for p in positions
        )
        ns = dict(self.namespace)
        exec(compile("\n".join(lines), "<repro-sim-cone>", "exec"), ns)
        return ns["cone"]

    def tick_settle(self, v, w, m) -> None:
        """Re-settle after a clock edge: the cone of every register output
        plus every memory-reading assignment."""
        fn = self._tick_cone
        if fn is False:
            seeds = {spec.index for spec in self.registers}
            fn = self.compile_cone(
                self.cone_positions(seeds, include_mem_reads=True)
            )
            self._tick_cone = fn
        if fn is not None:
            fn(v, w, m)

    # -- merged cones (the lazy dirty-set / activity-tracked fast path) ----

    #: Distinct merged-cone functions cached before falling back to
    #: sequential per-seed cones (bounds exec-compile cost on designs whose
    #: per-cycle activity patterns never repeat).
    MASK_CONE_CAP = 512

    def seed_mask(self, seed: int) -> int:
        """Bitmask (over schedule positions) of one signal's fanout cone."""
        mask = self._seed_masks.get(seed)
        if mask is None:
            mask = 0
            for p in self.cone_positions((seed,)):
                mask |= 1 << p
            self._seed_masks[seed] = mask
        return mask

    def mem_read_mask(self) -> int:
        """Bitmask of the fanout-closed memory-reading cone."""
        if self._mem_read_mask < 0:
            mask = 0
            for p in self.cone_positions((), include_mem_reads=True):
                mask |= 1 << p
            self._mem_read_mask = mask
        return self._mem_read_mask

    def settle_seeds(self, v, w, m, seeds, include_mem_reads: bool = False) -> None:
        """Re-settle the *union* cone of every changed seed in one pass.

        N driven inputs (or N changed registers) cost one levelized cone
        evaluation: the per-seed fanout masks are OR-ed and the merged mask
        keys a cache of compiled cone functions.  The union of per-seed
        cones is exactly the cone of the seed set (transitive fanout is
        monotone), and ascending positions remain a valid topo order.
        """
        mask = self.mem_read_mask() if include_mem_reads else 0
        for s in seeds:
            mask |= self.seed_mask(s)
        self._run_mask(v, w, m, mask)

    def settle_tick(self, v, w, m, changed_regs, mem_written: bool) -> None:
        """Activity-driven settle after a clock edge.

        Quiet edges (few registers changed) evaluate exactly the changed
        registers' merged cone.  Busy edges — where the activity already
        covers most of the full tick cone — run the single precomputed
        tick cone instead: a busy design (a CPU retiring instructions)
        produces a *different* activity pattern almost every cycle, and
        minting a compiled cone variant per pattern costs far more than
        the few skipped statements would save.
        """
        mask = self.mem_read_mask() if mem_written else 0
        for s in changed_regs:
            mask |= self.seed_mask(s)
        if not mask:
            return
        tick_mask = self._tick_mask
        if tick_mask < 0:
            tm = self.mem_read_mask()
            for spec in self.registers:
                tm |= self.seed_mask(spec.index)
            tick_mask = self._tick_mask = tm
        if 2 * mask.bit_count() >= tick_mask.bit_count():
            self.tick_settle(v, w, m)
            return
        self._run_mask(v, w, m, mask)

    def _run_mask(self, v, w, m, mask: int) -> None:
        if not mask:
            return
        fn = self._mask_cones.get(mask)
        if fn is not None:
            self.stat_cone_hits += 1
            fn(v, w, m)
            return
        if len(self._mask_cones) < self.MASK_CONE_CAP:
            self.stat_cone_misses += 1
            fn = self.compile_cone(self._mask_positions(mask))
            self._mask_cones[mask] = fn
            fn(v, w, m)
            return
        # Cache saturated (pathological activity variety that never
        # repeats): execute the merged cone through per-statement thunks —
        # one-time setup, no recurring exec-compiles, cost still linear in
        # the cone size rather than the full schedule.
        self.stat_cone_fallbacks += 1
        fns = self._pos_fns
        if fns is None:
            fns = self._build_pos_fns()
        p = 0
        while mask:
            if mask & 1:
                fns[p](v, w, m)
            mask >>= 1
            p += 1

    def _build_pos_fns(self) -> list:
        src = []
        ordered = zip(self.order_targets, self.order_code, strict=False)
        for i, (t, code) in enumerate(ordered):
            src.append(f"def _p{i}(v, w, m):\n    {self.lane_target(t)} = {code}")
        ns = dict(self.namespace)
        exec(compile("\n".join(src), "<repro-sim-pos>", "exec"), ns)
        fns = [ns[f"_p{i}"] for i in range(len(self.order_targets))]
        self._pos_fns = fns
        return fns

    @staticmethod
    def _mask_positions(mask: int) -> tuple[int, ...]:
        out = []
        p = 0
        while mask:
            if mask & 1:
                out.append(p)
            mask >>= 1
            p += 1
        return tuple(out)


def _sg(x: int, w: int) -> int:
    return x - (1 << w) if x & (1 << (w - 1)) else x


def _div(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem(a: int, b: int) -> int:
    if b == 0:
        return 0
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def _mins(x: int) -> int:
    return x if x < 256 else 256


class _Codegen:
    """Generates the raw/interpreted value code for IR expressions within
    one flattened instance context."""

    def __init__(
        self,
        path: str,
        signal_index: dict[str, int],
        mem_index: dict[str, int],
        mems: list[MemSpec],
        wide: frozenset,
    ):
        self.path = path
        self.signal_index = signal_index
        self.mem_index = mem_index
        self.mems = mems
        self.wide = wide

    def sig(self, local: str) -> int:
        key = f"{self.path}.{local}"
        idx = self.signal_index.get(key)
        if idx is None:
            raise SimulatorError(f"unknown signal {key}")
        return idx

    def lane(self, idx: int) -> str:
        """Storage expression for a signal (see :func:`_lane_expr`)."""
        return _lane_expr(idx, self.wide)

    def raw(self, e: Expr) -> str:
        if isinstance(e, Ref):
            return self.lane(self.sig(e.name))
        if isinstance(e, Literal):
            return str(literal_raw(e))
        if isinstance(e, SubField):
            inst = e.expr.name  # type: ignore[union-attr]
            return self.lane(self.sig(f"{inst}.{e.name}"))
        if isinstance(e, MemRead):
            mi = self.mem_index[f"{self.path}.{e.mem}"]
            depth = self.mems[mi].depth
            return f"m[{mi}][{self.raw(e.addr)} % {depth}]"
        if isinstance(e, PrimOp):
            return self._prim(e)
        raise SimulatorError(f"cannot compile expression {e!r}")

    def interp(self, e: Expr) -> str:
        if isinstance(e, Literal):
            return str(e.value)  # SInt literals are stored signed already
        if isinstance(e.typ, SIntType):
            return f"_sg({self.raw(e)}, {e.typ.width})"
        return self.raw(e)

    def _mask(self, code: str, e: PrimOp) -> str:
        return f"(({code}) & {(1 << e.typ.bit_width()) - 1})"

    def _prim(self, e: PrimOp) -> str:
        op = e.op
        rw = e.typ.bit_width()
        M = (1 << rw) - 1
        a = e.args
        if op in ("add", "sub", "mul"):
            sym = {"add": "+", "sub": "-", "mul": "*"}[op]
            return f"(({self.interp(a[0])} {sym} {self.interp(a[1])}) & {M})"
        if op == "div":
            return f"(_div({self.interp(a[0])}, {self.interp(a[1])}) & {M})"
        if op == "rem":
            return f"(_rem({self.interp(a[0])}, {self.interp(a[1])}) & {M})"
        if op in ("lt", "leq", "gt", "geq", "eq", "neq"):
            sym = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=", "eq": "==", "neq": "!="}[op]
            return f"(1 if {self.interp(a[0])} {sym} {self.interp(a[1])} else 0)"
        if op in ("and", "or", "xor"):
            sym = {"and": "&", "or": "|", "xor": "^"}[op]
            return f"(({self.interp(a[0])} {sym} {self.interp(a[1])}) & {M})"
        if op == "not":
            return f"((~{self.interp(a[0])}) & {M})"
        if op == "neg":
            return f"((-{self.interp(a[0])}) & {M})"
        if op == "andr":
            w = a[0].typ.bit_width()
            return f"(1 if {self.raw(a[0])} == {(1 << w) - 1} else 0)"
        if op == "orr":
            return f"(1 if {self.raw(a[0])} != 0 else 0)"
        if op == "xorr":
            return f"(({self.raw(a[0])}).bit_count() & 1)"
        if op == "cat":
            wb = a[1].typ.bit_width()
            return f"(({self.raw(a[0])} << {wb}) | {self.raw(a[1])})"
        if op == "bits":
            hi, lo = e.params
            m = (1 << (hi - lo + 1)) - 1
            if lo == 0:
                return f"({self.raw(a[0])} & {m})"
            return f"(({self.raw(a[0])} >> {lo}) & {m})"
        if op == "pad":
            return f"({self.interp(a[0])} & {M})"
        if op == "shl":
            return f"(({self.interp(a[0])} << {e.params[0]}) & {M})"
        if op == "shr":
            return f"(({self.interp(a[0])} >> {e.params[0]}) & {M})"
        if op == "dshl":
            return f"(({self.interp(a[0])} << _mins({self.raw(a[1])})) & {M})"
        if op == "dshr":
            return f"(({self.interp(a[0])} >> _mins({self.raw(a[1])})) & {M})"
        if op == "mux":
            t = f"({self.interp(a[1])} & {M})"
            f_ = f"({self.interp(a[2])} & {M})"
            return f"({t} if {self.raw(a[0])} else {f_})"
        if op in ("as_uint", "as_sint"):
            return self.raw(a[0])
        raise SimulatorError(f"cannot compile op {op!r}")


def _expr_reads_mem(e: Expr) -> bool:
    """Whether an expression reads any memory (its value can change on a
    clock edge even when no dependency signal changed)."""
    if isinstance(e, MemRead):
        return True
    if isinstance(e, PrimOp):
        return any(_expr_reads_mem(a) for a in e.args)
    return False


def _expr_dep_keys(e: Expr, path: str) -> set[str]:
    """Full-path signal names an expression reads (memories excluded —
    their content is state, but read addresses are dependencies)."""
    out: set[str] = set()

    def walk(x: Expr) -> None:
        if isinstance(x, Ref):
            out.add(f"{path}.{x.name}")
        elif isinstance(x, SubField):
            inst = x.expr.name  # type: ignore[union-attr]
            out.add(f"{path}.{inst}.{x.name}")
        elif isinstance(x, MemRead):
            walk(x.addr)
        elif isinstance(x, PrimOp):
            for a in x.args:
                walk(a)

    walk(e)
    return out


def compile_design(circuit: Circuit, top_path: str | None = None) -> CompiledDesign:
    """Flatten and compile a Low-form circuit for execution.

    ``top_path`` overrides the root instance name (defaults to the main
    module's name) — wrapping the design under a testbench-style prefix
    exercises the hierarchy-matching logic of paper Sec. 3.4.
    """
    root = top_path or circuit.main
    signal_index: dict[str, int] = {}
    signals: list[SignalInfo] = []
    mems: list[MemSpec] = []
    mem_index: dict[str, int] = {}
    assignments: list[tuple[int, str, str]] = []  # (target, code, target_path)
    registers: list[RegisterSpec] = []
    stop_lines: list[str] = []
    mem_ops: list[tuple[str, str, str, int, int]] = []  # (en, addr, data, mi, depth)
    printf_specs: list[tuple[str, int]] = []
    reads_mem: dict[int, bool] = {}

    def add_signal(path: str, width: int, kind: str, signed: bool, local: str) -> int:
        idx = len(signals)
        signal_index[path] = idx
        signals.append(SignalInfo(local, path, width, kind, signed))
        return idx

    # Pass 1: declare all signals instance by instance (so cross-hierarchy
    # connects resolve), building the hierarchy tree as we go.
    instances: list[tuple[str, str]] = []

    def declare(path: str, mod_name: str) -> HierNode:
        instances.append((path, mod_name))
        m = circuit.modules[mod_name]
        node = HierNode(path.rsplit(".", 1)[-1], path, mod_name)
        for p in m.ports:
            kind = p.direction
            signed = isinstance(p.typ, SIntType)
            idx = add_signal(f"{path}.{p.name}", p.typ.bit_width(), kind, signed, p.name)
            node.signals.append(signals[idx])
        for s in m.body:
            if isinstance(s, DefWire):
                idx = add_signal(
                    f"{path}.{s.name}", s.typ.bit_width(), "wire",
                    isinstance(s.typ, SIntType), s.name,
                )
                node.signals.append(signals[idx])
            elif isinstance(s, DefRegister):
                idx = add_signal(
                    f"{path}.{s.name}", s.typ.bit_width(), "reg",
                    isinstance(s.typ, SIntType), s.name,
                )
                node.signals.append(signals[idx])
            elif isinstance(s, DefNode):
                idx = add_signal(
                    f"{path}.{s.name}", s.value.typ.bit_width(), "node",
                    isinstance(s.value.typ, SIntType), s.name,
                )
                node.signals.append(signals[idx])
            elif isinstance(s, DefMemory):
                mi = len(mems)
                mems.append(
                    MemSpec(mi, f"{path}.{s.name}", s.typ.bit_width(), s.depth, s.init)
                )
                mem_index[f"{path}.{s.name}"] = mi
        for s in m.body:
            if isinstance(s, DefInstance):
                node.children.append(declare(f"{path}.{s.name}", s.module))
        return node

    hierarchy = declare(root, circuit.main)

    # Signals wider than one storage lane live in the wide overflow dict;
    # the split is static, decided here once for all generated code.
    wide_indices = frozenset(
        i for i, s in enumerate(signals) if s.width > LANE_BITS
    )

    def lane(idx: int) -> str:
        return _lane_expr(idx, wide_indices)

    # Pass 2: generate assignments / register specs / tick effects.
    dep_map: dict[int, set[int]] = {}
    assigned: set[int] = set()

    for path, mod_name in instances:
        m = circuit.modules[mod_name]
        cg = _Codegen(path, signal_index, mem_index, mems, wide_indices)
        reg_names = {s.name for s in m.body if isinstance(s, DefRegister)}
        reg_decl = {s.name: s for s in m.body if isinstance(s, DefRegister)}
        reg_next: dict[str, str] = {}

        for s in m.body:
            if isinstance(s, DefNode):
                target = cg.sig(s.name)
                assignments.append((target, cg.raw(s.value), path))
                assigned.add(target)
                reads_mem[target] = _expr_reads_mem(s.value)
                dep_map[target] = {
                    signal_index[k]
                    for k in _expr_dep_keys(s.value, path)
                    if k in signal_index
                }
            elif isinstance(s, Connect):
                if isinstance(s.loc, Ref) and s.loc.name in reg_names:
                    reg_next[s.loc.name] = cg.raw(s.expr)
                    continue
                if isinstance(s.loc, Ref):
                    target = cg.sig(s.loc.name)
                else:  # SubField -> instance input port
                    inst = s.loc.expr.name  # type: ignore[union-attr]
                    target = cg.sig(f"{inst}.{s.loc.name}")
                assignments.append((target, cg.raw(s.expr), path))
                assigned.add(target)
                reads_mem[target] = _expr_reads_mem(s.expr)
                dep_map[target] = {
                    signal_index[k]
                    for k in _expr_dep_keys(s.expr, path)
                    if k in signal_index
                }
            elif isinstance(s, MemWrite):
                mi = mem_index[f"{path}.{s.mem}"]
                depth = mems[mi].depth
                mem_ops.append((cg.raw(s.en), cg.raw(s.addr), cg.raw(s.data), mi, depth))
            elif isinstance(s, Stop):
                stop_lines.append(
                    f"    if {cg.raw(s.cond)}: "
                    f"raise SimulationFinished({s.exit_code}, time)"
                )
            elif isinstance(s, Printf):
                pi = len(printf_specs)
                printf_specs.append((s.fmt, len(s.args)))
                args = "".join(f", {cg.raw(a)}" for a in s.args)
                stop_lines.append(f"    if {cg.raw(s.cond)}: _pf({pi}{args})")

        for name, code in reg_next.items():
            decl = reg_decl[name]
            reset_idx = None
            init_code = None
            if decl.reset is not None and decl.init is not None:
                reset_idx = signal_index[next(iter(_expr_dep_keys(decl.reset, path)))]
                init_code = cg.raw(decl.init)
            registers.append(
                RegisterSpec(cg.sig(name), decl.typ.bit_width(), code, reset_idx, init_code)
            )
        for name, decl in reg_decl.items():
            if name not in reg_next and decl.reset is not None and decl.init is not None:
                reset_idx = signal_index[next(iter(_expr_dep_keys(decl.reset, path)))]
                registers.append(
                    RegisterSpec(
                        cg.sig(name), decl.typ.bit_width(),
                        None, reset_idx, cg.raw(decl.init),
                    )
                )

    # Topological sort of combinational assignments, then levelize: each
    # assignment's level is one past the deepest combinational input it
    # reads.  Re-ordering by level is still a valid topo order (same-level
    # assignments are independent) and partitions the schedule into blocks.
    order = _topo_sort(assignments, dep_map, assigned, signals)
    level_of: dict[int, int] = {}
    for target, _code, _path in order:
        comb_deps = [d for d in dep_map[target] if d in assigned and d != target]
        level_of[target] = 1 + max((level_of[d] for d in comb_deps), default=-1)
    order.sort(key=lambda a: level_of[a[0]])

    order_targets = [t for t, _c, _p in order]
    order_code = [c for _t, c, _p in order]
    order_deps = [frozenset(dep_map[t]) for t in order_targets]
    order_reads_mem = [reads_mem[t] for t in order_targets]
    order_level = [level_of[t] for t in order_targets]
    level_blocks: list[tuple[int, int]] = []
    start = 0
    for i in range(1, len(order_level) + 1):
        if i == len(order_level) or order_level[i] != order_level[start]:
            level_blocks.append((start, i))
            start = i

    comb_lines = ["def comb(v, w, m):"]
    if not order:
        comb_lines.append("    pass")
    for target, code, _path in order:
        comb_lines.append(f"    {lane(target)} = {code}")
    comb_source = "\n".join(comb_lines)

    def _mem_block(journal: bool, activity: bool) -> list[str]:
        out = []
        for wi, (en, addr, data, mi, depth) in enumerate(mem_ops):
            if journal:
                lines = [
                    f"    if {en}:",
                    f"        _ja{wi} = {addr} % {depth}",
                    f"        _jw(({mi}, _ja{wi}))",
                    f"        m[{mi}][_ja{wi}] = {data}",
                ]
                if activity:
                    lines.insert(1, "        _mw = 1")
                out.append("\n".join(lines))
            elif activity:
                out.append(
                    f"    if {en}:\n"
                    f"        _mw = 1\n"
                    f"        m[{mi}][{addr} % {depth}] = {data}"
                )
            else:
                out.append(f"    if {en}: m[{mi}][{addr} % {depth}] = {data}")
        return out

    def _tick_source(header: str, journal: bool, activity: bool) -> str:
        body = [header]
        # Order matters: stops/printfs observe the stable pre-edge state;
        # register next-values are computed before memory writes so they
        # read pre-edge memory contents; stores happen last (two-phase
        # update).
        body.extend(stop_lines)
        if activity:
            body.append("    _mw = 0")
        for i, spec in enumerate(registers):
            if spec.next_code is not None:
                body.append(f"    _t{i} = {spec.next_code}")
        body.extend(_mem_block(journal, activity))
        for i, spec in enumerate(registers):
            slot = lane(spec.index)
            if activity:
                # Store-and-report only on an actual change: the engine
                # re-settles just the reported registers' fanout.
                if spec.next_code is not None:
                    if spec.reset_index is not None:
                        body.append(
                            f"    _n{i} = {spec.init_code} "
                            f"if {lane(spec.reset_index)} else _t{i}"
                        )
                    else:
                        body.append(f"    _n{i} = _t{i}")
                    body.append(
                        f"    if {slot} != _n{i}:\n"
                        f"        {slot} = _n{i}\n"
                        f"        _ch({spec.index})"
                    )
                elif spec.reset_index is not None:
                    body.append(
                        f"    if {lane(spec.reset_index)} "
                        f"and {slot} != ({spec.init_code}):\n"
                        f"        {slot} = {spec.init_code}\n"
                        f"        _ch({spec.index})"
                    )
            elif spec.next_code is not None:
                if spec.reset_index is not None:
                    body.append(
                        f"    {slot} = {spec.init_code} "
                        f"if {lane(spec.reset_index)} else _t{i}"
                    )
                else:
                    body.append(f"    {slot} = _t{i}")
            elif spec.reset_index is not None:
                body.append(
                    f"    if {lane(spec.reset_index)}: {slot} = {spec.init_code}"
                )
        if activity:
            body.append("    return _mw")
        if len(body) == 1:
            body.append("    pass")
        return "\n".join(body)

    tick_source = _tick_source("def tick(v, w, m, time):", False, False)
    tick_journal_source = _tick_source(
        "def tick_journal(v, w, m, time, _jw):", True, False
    )
    tick_act_source = _tick_source(
        "def tick_act(v, w, m, time, _ch):", False, True
    )
    tick_act_journal_source = _tick_source(
        "def tick_act_journal(v, w, m, time, _jw, _ch):", True, True
    )

    namespace = {
        "_sg": _sg,
        "_div": _div,
        "_rem": _rem,
        "_mins": _mins,
        "SimulationFinished": SimulationFinished,
        "_pf": None,  # patched by the engine with its printf handler
    }
    exec(compile(comb_source, "<repro-sim-comb>", "exec"), namespace)
    exec(compile(tick_source, "<repro-sim-tick>", "exec"), namespace)
    exec(
        compile(tick_journal_source, "<repro-sim-tick-journal>", "exec"),
        namespace,
    )
    exec(compile(tick_act_source, "<repro-sim-tick-act>", "exec"), namespace)
    exec(
        compile(tick_act_journal_source, "<repro-sim-tick-act-journal>", "exec"),
        namespace,
    )

    main_mod = circuit.modules[circuit.main]
    top_inputs = {
        p.name: signal_index[f"{root}.{p.name}"]
        for p in main_mod.ports
        if p.direction == "input"
    }

    state_indices = tuple(
        i for i in range(len(signals)) if i not in assigned
    )

    return CompiledDesign(
        circuit=circuit,
        signal_index=signal_index,
        signals=signals,
        mems=mems,
        registers=registers,
        comb=namespace["comb"],
        tick=namespace["tick"],
        comb_source=comb_source,
        tick_source=tick_source,
        hierarchy=hierarchy,
        clock_index=signal_index[f"{root}.clock"],
        reset_index=signal_index[f"{root}.reset"],
        top_inputs=top_inputs,
        printf_specs=printf_specs,
        mem_index=mem_index,
        wide_indices=wide_indices,
        tick_journal=namespace["tick_journal"],
        tick_journal_source=tick_journal_source,
        tick_act=namespace["tick_act"],
        tick_act_source=tick_act_source,
        tick_act_journal=namespace["tick_act_journal"],
        tick_act_journal_source=tick_act_journal_source,
        order_targets=order_targets,
        order_code=order_code,
        order_deps=order_deps,
        order_reads_mem=order_reads_mem,
        order_level=order_level,
        level_blocks=level_blocks,
        state_indices=state_indices,
        namespace=namespace,
        _pos_of_target={t: p for p, t in enumerate(order_targets)},
    )


def _topo_sort(assignments, dep_map, assigned, signals):
    """Kahn's algorithm over the comb assignment graph."""
    by_target = {t: (t, code, path) for t, code, path in assignments}
    if len(by_target) != len(assignments):
        raise SimulatorError("duplicate combinational drivers (internal)")
    indeg: dict[int, int] = {}
    fanout: dict[int, list[int]] = {}
    for t, deps in dep_map.items():
        comb_deps = [d for d in deps if d in assigned and d != t]
        indeg[t] = len(comb_deps)
        for d in comb_deps:
            fanout.setdefault(d, []).append(t)
    ready = [t for t, n in indeg.items() if n == 0]
    order: list[tuple[int, str, str]] = []
    while ready:
        t = ready.pop()
        order.append(by_target[t])
        for u in fanout.get(t, ()):
            indeg[u] -= 1
            if indeg[u] == 0:
                ready.append(u)
    if len(order) != len(assignments):
        stuck = [signals[t].path for t, n in indeg.items() if n > 0]
        raise CombLoopError(
            "combinational loop involving: " + ", ".join(sorted(stuck)[:10])
        )
    return order


# -- many-worlds vector kernels (repro.sim.manyworlds) -----------------------
#
# compile_vector() compiles one design for N scenario "worlds" at once: the
# narrow value table widens to an (n_signals, worlds) uint64 matrix and every
# levelized cone statement becomes one numpy ufunc chain over whole rows, so
# a single vcomb/vtick call advances all N worlds in lockstep.
#
# Correctness rests on a mod-2**64 representation: each operand column is
# congruent (mod 2**64) to the value the scalar path's unbounded-int code
# computes, so wraparound uint64 arithmetic followed by the result-width mask
# is bit-identical to the scalar result.  Sign-sensitive ops (ordered
# compares, arithmetic shifts) reinterpret lanes as int64.  Statements that
# touch anything wider than one lane — wide signals, wide memories, >64-bit
# intermediates, signed div/rem — fall back to the *original* scalar code
# run once per world through tiny per-world adapter views, preserving exact
# parity at scalar speed for just those statements.

_FULL64 = (1 << LANE_BITS) - 1
_BARE_ROW_RE = re.compile(r"v\[\d+\]")
_DIGITS_RE = re.compile(r"\d+")
# A vector-code fragment made only of these characters is a pure python
# integer expression: every column/memory reference or helper call would
# contribute a letter or a bracket.  Such fragments are folded at codegen
# time so every surviving expression provably touches an ndarray.
_CONSTEXPR_RE = re.compile(r"^[0-9+\-*&|^~()<> ]+$")


class _NeedScalar(Exception):
    """Statement cannot be vectorized; fall back to per-world scalar code."""


@dataclass(slots=True)
class VectorKernels:
    """Compiled many-worlds kernels for one (design, worlds) pair.

    ``v`` is the (n_signals, worlds) uint64 matrix, ``w`` the flat wide
    overflow dict keyed ``signal_index * worlds + world``, ``m`` the list of
    memories — (worlds, depth) uint64 arrays for narrow memories, lists of
    per-world python lists for wide ones.

    ``vtick(v, w, m, time, _act, _stop)`` takes the active-world bool mask
    and a stop callback ``_stop(exit_code, mask, time)``; memory writes and
    stop/printf effects are masked by ``_act`` so finished worlds freeze,
    while register/comb columns keep advancing (the simulator archives a
    finished world's state at stop time).
    """

    worlds: int
    vcomb: object
    vtick: object
    vtick_journal: object
    vcomb_source: str
    vtick_source: str
    vtick_journal_source: str
    namespace: dict
    n_vector: int
    n_scalar: int


class _VecCodegen(_Codegen):
    """Vector twin of :class:`_Codegen`: emits numpy column expressions in
    mod-2**64 representation, raising :class:`_NeedScalar` for anything that
    cannot be carried in one 64-bit lane per world.

    Three per-op overheads dominate small-world kernels, so the emitter
    works to avoid them: integer literals and result masks are pre-bound as
    ``np.uint64`` namespace constants (skipping numpy's per-op python-int
    coercion), literal-only subtrees are folded at codegen time, and masks
    that are provably no-ops on canonical lanes are elided outright.
    """

    _ARITH_SYM = {"add": "+", "sub": "-", "mul": "*",
                  "and": "&", "or": "|", "xor": "^"}

    def __init__(
        self,
        path: str,
        signal_index: dict[str, int],
        mem_index: dict[str, int],
        mems: list[MemSpec],
        wide: frozenset,
        consts: dict[int, str],
    ):
        super().__init__(path, signal_index, mem_index, mems, wide)
        self.consts = consts  # shared value -> namespace-name pool

    def const(self, value: int) -> str:
        name = self.consts.get(value)
        if name is None:
            name = f"_K{len(self.consts)}"
            self.consts[value] = name
        return name

    @staticmethod
    def _arrayish(code: str) -> bool:
        # Contains a column or memory read somewhere: every helper and
        # ufunc is elementwise, so the runtime value is an ndarray and
        # uint64 arithmetic wraps mod 2**64 natively.
        return "v[" in code or "m[" in code

    def _operand(self, code: str, other: str) -> str:
        """Pre-bind an integer-literal operand of an infix numpy op as a
        ``np.uint64`` constant when the other side is a column expression
        (both-literal operands stay python ints and fold)."""
        if _DIGITS_RE.fullmatch(code) and not _CONSTEXPR_RE.fullmatch(other):
            return self.const(int(code))
        return code

    def _mask_to(self, code: str, mask: int, elide: bool = False) -> str:
        if _CONSTEXPR_RE.fullmatch(code):
            return str(eval(code) & mask)  # fold literal-only subtrees
        if elide:
            return code
        return f"(({code}) & {self.const(mask)})"

    def _arith_core(self, e: Expr):
        """Unmasked ``(a op b)`` core of a two-operand arithmetic op, or
        None.  Returns ``(code, canonical)`` where ``canonical`` means the
        unmasked result already fits the op's width (bitwise ops over
        unsigned canonical lanes)."""
        if not isinstance(e, PrimOp):
            return None
        sym = self._ARITH_SYM.get(e.op)
        if sym is None or e.typ.bit_width() > LANE_BITS:
            return None
        a = e.args
        x, y = self.interp(a[0]), self.interp(a[1])
        code = f"(({self._operand(x, y)}) {sym} ({self._operand(y, x)}))"
        signed = (isinstance(a[0].typ, SIntType)
                  or isinstance(a[1].typ, SIntType))
        canonical = e.op in ("and", "or", "xor") and not signed
        return code, canonical

    def lane(self, idx: int) -> str:
        if idx in self.wide:
            raise _NeedScalar("wide signal")
        return f"v[{idx}]"

    def raw(self, e: Expr) -> str:
        if isinstance(e, Ref):
            return self.lane(self.sig(e.name))
        if isinstance(e, Literal):
            value = literal_raw(e)
            if value > _FULL64:
                raise _NeedScalar("wide literal")
            return str(value)
        if isinstance(e, SubField):
            inst = e.expr.name  # type: ignore[union-attr]
            return self.lane(self.sig(f"{inst}.{e.name}"))
        if isinstance(e, MemRead):
            mi = self.mem_index[f"{self.path}.{e.mem}"]
            spec = self.mems[mi]
            if spec.width > LANE_BITS:
                raise _NeedScalar("wide memory")
            return f"m[{mi}][_RW, ({self.raw(e.addr)}) % {spec.depth}]"
        if isinstance(e, PrimOp):
            return self._prim(e)
        raise _NeedScalar(type(e).__name__)

    def interp(self, e: Expr) -> str:
        if isinstance(e, Literal):
            return str(e.value & _FULL64)
        if isinstance(e.typ, SIntType):
            w = e.typ.width
            if w > LANE_BITS:
                raise _NeedScalar("wide signed")
            if w == LANE_BITS:
                return self.raw(e)
            return f"_vsx({self.raw(e)}, {1 << (w - 1)})"
        return self.raw(e)

    def _prim(self, e: PrimOp) -> str:
        op = e.op
        rw = e.typ.bit_width()
        if rw > LANE_BITS:
            raise _NeedScalar(op)
        M = (1 << rw) - 1
        a = e.args
        core = self._arith_core(e)
        if core is not None:
            code, canonical = core
            # 64-bit lanes wrap mod 2**64 natively once an ndarray is in
            # the expression, so the full-lane mask is a no-op.
            elide = canonical or (rw == LANE_BITS and self._arrayish(code))
            return self._mask_to(code, M, elide)
        if op in ("div", "rem"):
            if isinstance(a[0].typ, SIntType) or isinstance(a[1].typ, SIntType):
                raise _NeedScalar(op)  # sign-sensitive trunc division
            fn = "_vdivu" if op == "div" else "_vremu"
            return self._mask_to(
                f"{fn}({self.raw(a[0])}, {self.raw(a[1])})", M
            )
        if op in ("lt", "leq", "gt", "geq", "eq", "neq"):
            sym = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=",
                   "eq": "==", "neq": "!="}[op]
            if isinstance(a[0].typ, SIntType) or isinstance(a[1].typ, SIntType):
                for arg in a:
                    if (not isinstance(arg.typ, SIntType)
                            and arg.typ.bit_width() > LANE_BITS - 1):
                        raise _NeedScalar(op)  # 64-bit UInt vs SInt compare
                return (f"_vb(_vs64({self.interp(a[0])}) {sym} "
                        f"_vs64({self.interp(a[1])}))")
            x, y = self.raw(a[0]), self.raw(a[1])
            return (f"_vb(({self._operand(x, y)}) {sym} "
                    f"({self._operand(y, x)}))")
        if op == "not":
            code = f"(~({self.interp(a[0])}))"
            return self._mask_to(
                code, M, rw == LANE_BITS and self._arrayish(code)
            )
        if op == "neg":
            code = f"(0 - ({self.interp(a[0])}))"
            return self._mask_to(
                code, M, rw == LANE_BITS and self._arrayish(code)
            )
        if op == "andr":
            w = a[0].typ.bit_width()
            if w > LANE_BITS:
                raise _NeedScalar(op)
            x = self.raw(a[0])
            return f"_vb(({x}) == ({self._operand(str((1 << w) - 1), x)}))"
        if op == "orr":
            return f"_vb(({self.raw(a[0])}) != 0)"
        if op == "xorr":
            return f"_vxorr({self.raw(a[0])})"
        if op == "cat":
            wb = a[1].typ.bit_width()
            x, y = self.raw(a[0]), self.raw(a[1])
            return f"((({x}) << {self._operand(str(wb), x)}) | ({y}))"
        if op == "bits":
            hi, lo = e.params
            m_ = (1 << (hi - lo + 1)) - 1
            if lo == 0:
                if hi >= a[0].typ.bit_width() - 1:
                    return self.raw(a[0])  # full-width slice of a canonical lane
                inner = self._arith_core(a[0])
                if inner is not None:
                    # (x & M_inner) & m_ == x & m_ for m_ within M_inner:
                    # skip the arith op's own mask and apply the slice's.
                    return self._mask_to(inner[0], m_)
                return self._mask_to(self.raw(a[0]), m_)
            if lo >= LANE_BITS:
                raise _NeedScalar(op)
            src = self.raw(a[0])
            sh = self._operand(str(lo), src)
            return self._mask_to(f"(({src}) >> {sh})", m_)
        if op == "pad":
            if isinstance(a[0].typ, SIntType):
                code = self.interp(a[0])
                return self._mask_to(
                    code, M, rw == LANE_BITS and self._arrayish(code)
                )
            return self.interp(a[0])  # widening a canonical lane is a no-op
        if op == "shl":
            x = self.interp(a[0])
            code = f"(({x}) << {self._operand(str(e.params[0]), x)})"
            return self._mask_to(
                code, M, rw == LANE_BITS and self._arrayish(code)
            )
        if op == "shr":
            c = e.params[0]
            if isinstance(a[0].typ, SIntType):
                code = f"_vsra({self.interp(a[0])}, {min(c, 63)})"
                return self._mask_to(
                    code, M, rw == LANE_BITS and self._arrayish(code)
                )
            if c >= LANE_BITS:
                return "0"
            x = self.interp(a[0])
            # A canonical lane shifted right always fits the result width.
            return f"(({x}) >> {self._operand(str(c), x)})"
        if op == "dshl":
            code = f"_vdshl({self.interp(a[0])}, {self.raw(a[1])})"
            return self._mask_to(
                code, M, rw == LANE_BITS and self._arrayish(code)
            )
        if op == "dshr":
            if isinstance(a[0].typ, SIntType):
                code = f"_vdshrs({self.interp(a[0])}, {self.raw(a[1])})"
                return self._mask_to(
                    code, M, rw == LANE_BITS and self._arrayish(code)
                )
            # Unsigned dynamic shr of a canonical lane fits the width.
            return f"_vdshru({self.raw(a[0])}, {self.raw(a[1])})"
        if op == "mux":
            t, f_ = self.interp(a[1]), self.interp(a[2])
            if isinstance(a[1].typ, SIntType):
                t = self._mask_to(t, M, rw == LANE_BITS and self._arrayish(t))
            if isinstance(a[2].typ, SIntType):
                f_ = self._mask_to(
                    f_, M, rw == LANE_BITS and self._arrayish(f_)
                )
            tb, fb = self._operand(t, f_), self._operand(f_, t)
            return f"_vsel({self.raw(a[0])}, ({tb}), ({fb}))"
        if op in ("as_uint", "as_sint"):
            return self.raw(a[0])
        raise _NeedScalar(op)


class _WorldLanes:
    """Scalar-code view of one world's column: python ints in and out."""

    __slots__ = ("mat", "k")

    def __init__(self, mat, k):
        self.mat = mat
        self.k = k

    def __getitem__(self, i):
        return int(self.mat[i, self.k])

    def __setitem__(self, i, value):
        self.mat[i, self.k] = value


class _WorldWide:
    """One world's slice of the flat wide dict (key = index*worlds + k)."""

    __slots__ = ("wide", "k", "stride")

    def __init__(self, wide, k, stride):
        self.wide = wide
        self.k = k
        self.stride = stride

    def __getitem__(self, i):
        return self.wide[i * self.stride + self.k]

    def __setitem__(self, i, value):
        self.wide[i * self.stride + self.k] = value

    def __contains__(self, i):
        return i * self.stride + self.k in self.wide


class _WorldMemRow:
    """Scalar-code view of one world's row of a (worlds, depth) memory."""

    __slots__ = ("mem", "k")

    def __init__(self, mem, k):
        self.mem = mem
        self.k = k

    def __getitem__(self, a):
        return int(self.mem[self.k, a])

    def __setitem__(self, a, value):
        self.mem[self.k, a] = value


class _WorldMems:
    __slots__ = ("mems", "k")

    def __init__(self, mems, k):
        self.mems = mems
        self.k = k

    def __getitem__(self, mi):
        mem = self.mems[mi]
        if isinstance(mem, list):  # wide memory: list of per-world lists
            return mem[self.k]
        return _WorldMemRow(mem, self.k)


def _mkjw(mi, k, jw):
    def rec(a):
        jw((mi, (k, a)))
    return rec


def _vector_helpers(worlds: int) -> dict:
    """Build the exec namespace for one world count: numpy helper functions
    closed over ``worlds`` plus the scalar-fallback machinery."""
    np = _np
    u64 = np.uint64
    i64 = np.int64
    allt = np.ones(worlds, dtype=bool)
    zw = np.zeros(worlds, dtype=bool)

    def _as64(x):
        return np.ascontiguousarray(x).view(i64)

    def _vsx(x, c):
        # sign-extend a w-bit lane into mod-2**64 representation; c = 2**(w-1)
        if isinstance(x, int):
            return ((x ^ c) - c) & _FULL64
        return (x ^ c) - c

    def _vs64(x):
        if isinstance(x, int):
            return x - (1 << 64) if x >= (1 << 63) else x
        return _as64(x)

    def _vb(x):
        if isinstance(x, np.ndarray):
            return x.astype(u64)
        return 1 if x else 0

    def _vsel(c, t, f):
        if not isinstance(c, np.ndarray) or c.ndim == 0:
            return t if c else f
        if not (isinstance(t, np.ndarray) or isinstance(f, np.ndarray)):
            t = np.full(worlds, t, dtype=u64)
        return np.where(c != 0, t, f)

    def _scalarize(b):
        # np.uint64 scalars leak in from pre-bound constants; collapse
        # them (and 0-d arrays) to python ints so the scalar fast paths
        # and shape-dependent code below stay correct.
        if not isinstance(b, np.ndarray) or b.ndim == 0:
            return int(b)
        return b

    def _vdivu(a, b):
        b = _scalarize(b)
        if isinstance(b, int):
            if not isinstance(a, np.ndarray):
                return a // b if b else 0
            if b == 0:
                return np.zeros(worlds, dtype=u64)
            return a // b
        if isinstance(a, int):
            a = np.full(b.shape, a, dtype=u64)
        out = np.zeros(b.shape, dtype=u64)
        np.floor_divide(a, b, out=out, where=b != 0)
        return out

    def _vremu(a, b):
        b = _scalarize(b)
        if isinstance(b, int):
            if not isinstance(a, np.ndarray):
                return a % b if b else 0
            if b == 0:
                return np.zeros(worlds, dtype=u64)
            return a % b
        if isinstance(a, int):
            a = np.full(b.shape, a, dtype=u64)
        out = np.zeros(b.shape, dtype=u64)
        np.remainder(a, b, out=out, where=b != 0)
        return out

    def _vsra(x, c):
        # arithmetic shift right of a mod-2**64 lane, 0 <= c <= 63
        if isinstance(x, int):
            xs = x - (1 << 64) if x >= (1 << 63) else x
            return (xs >> c) & _FULL64
        return (_as64(x) >> c).view(u64)

    def _vdshl(a, b):
        b = _scalarize(b)
        if isinstance(b, int):
            if b >= 64:
                return 0 if isinstance(a, int) else np.zeros(worlds, dtype=u64)
            return a << b
        ok = b < 64
        out = a << np.where(ok, b, 0).astype(u64)
        return np.where(ok, out, 0).astype(u64)

    def _vdshru(a, b):
        b = _scalarize(b)
        if isinstance(b, int):
            if b >= 64:
                return 0 if isinstance(a, int) else np.zeros(worlds, dtype=u64)
            return a >> b
        ok = b < 64
        out = a >> np.where(ok, b, 0).astype(u64)
        return np.where(ok, out, 0).astype(u64)

    def _vdshrs(a, b):
        b = _scalarize(b)
        if isinstance(b, int):
            return _vsra(a, min(b, 63))
        safe = np.minimum(b, 63).astype(i64)
        if isinstance(a, int):
            a = np.full(b.shape, a, dtype=u64)
        return (_as64(a) >> safe).view(u64)

    def _vxorr(x):
        if isinstance(x, int):
            return x.bit_count() & 1
        y = x ^ (x >> 32)
        y = y ^ (y >> 16)
        y = y ^ (y >> 8)
        y = y ^ (y >> 4)
        y = y ^ (y >> 2)
        y = y ^ (y >> 1)
        return y & 1

    def _vmask(x):
        # condition value -> bool hit mask, or None when no world fired
        if not isinstance(x, np.ndarray) or x.ndim == 0:
            return allt.copy() if x else None
        m = x != 0
        return m if m.any() else None

    def _vidx(x, ks):
        if isinstance(x, np.ndarray) and x.ndim:
            return x[ks]
        return x

    def _vjw(ks, addrs):
        kl = ks.tolist()
        if isinstance(addrs, np.ndarray):
            return zip(kl, addrs.tolist(), strict=True)
        return zip(kl, [int(addrs)] * len(kl), strict=True)

    def _mkadp(v, w, m):
        return [
            (_WorldLanes(v, k), _WorldWide(w, k, worlds), _WorldMems(m, k))
            for k in range(worlds)
        ]

    return {
        "_vsx": _vsx, "_vs64": _vs64, "_vb": _vb, "_vsel": _vsel,
        "_vdivu": _vdivu, "_vremu": _vremu, "_vsra": _vsra,
        "_vdshl": _vdshl, "_vdshru": _vdshru, "_vdshrs": _vdshrs,
        "_vxorr": _vxorr, "_vmask": _vmask, "_vidx": _vidx, "_vjw": _vjw,
        "_mkadp": _mkadp, "_mkjw": _mkjw,
        "_RW": np.arange(worlds), "_RWL": range(worlds), "_ZW": zw,
        "_sg": _sg, "_div": _div, "_rem": _rem, "_mins": _mins,
        "_pfv": None,  # patched by ManyWorldsSimulator: _pfv(pi, mask, *cols)
        "_pfk": None,  # patched by ManyWorldsSimulator: _pfk(pi, k, args)
    }


def compile_vector(design: CompiledDesign, worlds: int) -> VectorKernels:
    """Compile ``design`` into fused many-worlds column kernels for ``worlds``
    scenarios, cached on the design per world count.

    Statement-level fallback keeps parity total: anything the vector codegen
    cannot express in one lane per world reuses the already-generated scalar
    code, executed per world through adapter views of the matrix.
    """
    if _np is None:
        raise SimulatorError(
            "many-worlds vector kernels require numpy (not installed)"
        )
    if worlds < 1:
        raise SimulatorError("worlds must be >= 1")
    cached = design._vector_kernels.get(worlds)
    if cached is not None:
        return cached

    circuit = design.circuit
    root = design.hierarchy.path
    wide = design.wide_indices
    mems = design.mems

    instances: list[tuple[str, str]] = []

    def visit(path: str, mod_name: str) -> None:
        instances.append((path, mod_name))
        for s in circuit.modules[mod_name].body:
            if isinstance(s, DefInstance):
                visit(f"{path}.{s.name}", s.module)

    visit(root, circuit.main)

    def vec(fn, *args):
        try:
            return fn(*args)
        except _NeedScalar:
            return None

    # Re-walk the retained IR in compile_design's exact statement order,
    # regenerating a vector expression per statement (or None = fallback).
    consts: dict[int, str] = {}  # np.uint64 constant pool, all instances
    assign_vec: dict[int, str | None] = {}
    reg_entries: list[dict] = []
    effects: list[dict] = []
    mem_entries: list[dict] = []
    n_printf = 0

    for path, mod_name in instances:
        m = circuit.modules[mod_name]
        cg = _Codegen(path, design.signal_index, design.mem_index, mems, wide)
        vg = _VecCodegen(
            path, design.signal_index, design.mem_index, mems, wide, consts
        )
        reg_names = {s.name for s in m.body if isinstance(s, DefRegister)}
        reg_decl = {s.name: s for s in m.body if isinstance(s, DefRegister)}
        reg_next: dict[str, str | None] = {}

        for s in m.body:
            if isinstance(s, DefNode):
                target = cg.sig(s.name)
                assign_vec[target] = (
                    None if target in wide else vec(vg.raw, s.value)
                )
            elif isinstance(s, Connect):
                if isinstance(s.loc, Ref) and s.loc.name in reg_names:
                    reg_next[s.loc.name] = vec(vg.raw, s.expr)
                    continue
                if isinstance(s.loc, Ref):
                    target = cg.sig(s.loc.name)
                else:
                    inst = s.loc.expr.name  # type: ignore[union-attr]
                    target = cg.sig(f"{inst}.{s.loc.name}")
                assign_vec[target] = (
                    None if target in wide else vec(vg.raw, s.expr)
                )
            elif isinstance(s, MemWrite):
                mi = design.mem_index[f"{path}.{s.mem}"]
                trip = None
                if mems[mi].width <= LANE_BITS:
                    parts = (vec(vg.raw, s.en), vec(vg.raw, s.addr),
                             vec(vg.raw, s.data))
                    if None not in parts:
                        trip = parts
                mem_entries.append({
                    "vec": trip,
                    "scalar": (cg.raw(s.en), cg.raw(s.addr), cg.raw(s.data)),
                    "mi": mi, "depth": mems[mi].depth,
                })
            elif isinstance(s, Stop):
                effects.append({
                    "kind": "stop",
                    "vec": vec(vg.raw, s.cond),
                    "scalar": cg.raw(s.cond),
                    "code": s.exit_code,
                })
            elif isinstance(s, Printf):
                pi = n_printf
                n_printf += 1
                cond_v = vec(vg.raw, s.cond)
                args_v = [vec(vg.raw, arg) for arg in s.args]
                if cond_v is None or None in args_v:
                    cond_v = None
                effects.append({
                    "kind": "printf", "pi": pi,
                    "vec": cond_v, "vec_args": args_v,
                    "scalar": cg.raw(s.cond),
                    "scalar_args": [cg.raw(arg) for arg in s.args],
                })

        for name, next_v in reg_next.items():
            decl = reg_decl[name]
            idx = cg.sig(name)
            entry = {"index": idx, "next_v": None if idx in wide else next_v,
                     "reset": None, "init_v": None}
            if decl.reset is not None and decl.init is not None:
                entry["reset"] = design.signal_index[
                    next(iter(_expr_dep_keys(decl.reset, path)))
                ]
                entry["init_v"] = (
                    None if idx in wide else vec(vg.raw, decl.init)
                )
            reg_entries.append(entry)
        for name, decl in reg_decl.items():
            if (name not in reg_next and decl.reset is not None
                    and decl.init is not None):
                idx = cg.sig(name)
                reg_entries.append({
                    "index": idx, "next_v": None,
                    "reset": design.signal_index[
                        next(iter(_expr_dep_keys(decl.reset, path)))
                    ],
                    "init_v": None if idx in wide else vec(vg.raw, decl.init),
                })

    if set(assign_vec) != set(design.order_targets):
        raise SimulatorError("internal: vector comb walk mismatch")
    if n_printf != len(design.printf_specs):
        raise SimulatorError("internal: vector printf walk mismatch")

    sfn_src: list[str] = []
    n_vector = 0
    n_scalar = 0

    # Combinational settle.
    comb_body: list[str] = []
    comb_fallback = False
    for p, target in enumerate(design.order_targets):
        code = assign_vec[target]
        if code is None:
            comb_fallback = True
            n_scalar += 1
            sfn_src.append(
                f"def _sc{p}(v, w, m):\n"
                f"    {design.lane_target(target)} = {design.order_code[p]}"
            )
            comb_body.append(f"    for _k in _RWL: _sc{p}(*_A[_k])")
        else:
            n_vector += 1
            comb_body.append(f"    v[{target}] = {code}")
    comb_lines = ["def vcomb(v, w, m):"]
    if comb_fallback:
        comb_lines.append("    _A = _mkadp(v, w, m)")
    comb_lines.extend(comb_body or ["    pass"])
    vcomb_source = "\n".join(comb_lines)

    # Effects: shared per-world scalar condition/arg functions.
    for si, eff in enumerate(effects):
        if eff["vec"] is not None:
            n_vector += 1
            continue
        n_scalar += 1
        if eff["kind"] == "stop":
            sfn_src.append(
                f"def _scond{si}(v, w, m):\n    return {eff['scalar']}"
            )
        else:
            sfn_src.append(
                f"def _spfc{si}(v, w, m):\n    return {eff['scalar']}"
            )
            args = ", ".join(eff["scalar_args"])
            tail = f"({args},)" if args else "()"
            sfn_src.append(f"def _spfa{si}(v, w, m):\n    return {tail}")

    # Registers: decide vector vs fallback per register as one unit.
    reg_vec_ok: list[bool] = []
    for i, (spec, ent) in enumerate(
        zip(design.registers, reg_entries, strict=True)
    ):
        if spec.index != ent["index"] or spec.reset_index != ent["reset"]:
            raise SimulatorError("internal: vector register walk mismatch")
        ok = spec.index not in wide
        if spec.next_code is not None and ent["next_v"] is None:
            ok = False
        if spec.reset_index is not None and ent["init_v"] is None:
            ok = False
        reg_vec_ok.append(ok)
        if ok:
            n_vector += 1
            continue
        n_scalar += 1
        slot = design.lane_target(spec.index)
        if spec.next_code is not None:
            sfn_src.append(f"def _sr{i}(v, w, m):\n    return {spec.next_code}")
            if spec.reset_index is not None:
                sfn_src.append(
                    f"def _ss{i}(v, w, m, _t):\n"
                    f"    {slot} = {spec.init_code} "
                    f"if {design.lane_target(spec.reset_index)} else _t"
                )
            else:
                sfn_src.append(f"def _ss{i}(v, w, m, _t):\n    {slot} = _t")
        else:
            sfn_src.append(
                f"def _ss{i}(v, w, m):\n"
                f"    if {design.lane_target(spec.reset_index)}: "
                f"{slot} = {spec.init_code}"
            )

    # Memory writes.
    for wi, me in enumerate(mem_entries):
        if me["vec"] is not None:
            n_vector += 1
            continue
        n_scalar += 1
        en, addr, data = me["scalar"]
        mi, depth = me["mi"], me["depth"]
        sfn_src.append(
            f"def _smw{wi}(v, w, m):\n"
            f"    if {en}: m[{mi}][{addr} % {depth}] = {data}"
        )
        sfn_src.append(
            f"def _smwj{wi}(v, w, m, _rec):\n"
            f"    if {en}:\n"
            f"        _ja = {addr} % {depth}\n"
            f"        _rec(_ja)\n"
            f"        m[{mi}][_ja] = {data}"
        )

    need_adapters = (
        any(e["vec"] is None for e in effects)
        or any(not ok for ok in reg_vec_ok)
        or any(me["vec"] is None for me in mem_entries)
    )

    def build_tick(name: str, journal: bool) -> str:
        extra = ", _jw" if journal else ""
        body = [f"def {name}(v, w, m, time, _act, _stop{extra}):"]
        if need_adapters:
            body.append("    _A = _mkadp(v, w, m)")
        # Same phase order as the scalar tick: stops/printfs observe the
        # stable pre-edge state, register next-values are computed before
        # memory writes, stores happen last.  Effects and memory writes are
        # masked by _act; _stop mutates _act in place so a world that
        # finishes at this edge is frozen for the rest of the tick.
        for si, eff in enumerate(effects):
            if eff["kind"] == "stop":
                if eff["vec"] is not None:
                    body += [
                        f"    _sm{si} = _vmask({eff['vec']})",
                        f"    if _sm{si} is not None:",
                        f"        _sm{si} &= _act",
                        f"        if _sm{si}.any(): "
                        f"_stop({eff['code']}, _sm{si}, time)",
                    ]
                else:
                    body += [
                        f"    _sm{si} = _ZW.copy()",
                        "    for _k in _RWL:",
                        f"        if _act[_k] and _scond{si}(*_A[_k]): "
                        f"_sm{si}[_k] = True",
                        f"    if _sm{si}.any(): "
                        f"_stop({eff['code']}, _sm{si}, time)",
                    ]
            elif eff["vec"] is not None:
                args = "".join(f", ({c})" for c in eff["vec_args"])
                body += [
                    f"    _pm{si} = _vmask({eff['vec']})",
                    f"    if _pm{si} is not None:",
                    f"        _pm{si} &= _act",
                    f"        if _pm{si}.any(): _pfv({eff['pi']}, _pm{si}{args})",
                ]
            else:
                body += [
                    "    for _k in _RWL:",
                    f"        if _act[_k] and _spfc{si}(*_A[_k]): "
                    f"_pfk({eff['pi']}, _k, _spfa{si}(*_A[_k]))",
                ]
        for i, (spec, ent) in enumerate(
            zip(design.registers, reg_entries, strict=True)
        ):
            if spec.next_code is None:
                continue
            if reg_vec_ok[i]:
                code = ent["next_v"]
                if _BARE_ROW_RE.fullmatch(code):
                    code = f"({code}).copy()"  # defer: row mutates in stores
                body.append(f"    _t{i} = {code}")
            else:
                body.append(f"    _t{i} = [_sr{i}(*_A[_k]) for _k in _RWL]")
        for wi, me in enumerate(mem_entries):
            mi, depth = me["mi"], me["depth"]
            if me["vec"] is not None:
                en, addr, data = me["vec"]
                body += [
                    f"    _wm{wi} = _vmask({en})",
                    f"    if _wm{wi} is not None:",
                    f"        _wm{wi} &= _act",
                    f"        if _wm{wi}.any():",
                    f"            _wk{wi} = _wm{wi}.nonzero()[0]",
                    f"            _wa{wi} = _vidx(({addr}) % {depth}, _wk{wi})",
                ]
                if journal:
                    body.append(
                        f"            for _kk, _aa in _vjw(_wk{wi}, _wa{wi}): "
                        f"_jw(({mi}, (_kk, _aa)))"
                    )
                body.append(
                    f"            m[{mi}][_wk{wi}, _wa{wi}] = "
                    f"_vidx({data}, _wk{wi})"
                )
            elif journal:
                body += [
                    "    for _k in _RWL:",
                    f"        if _act[_k]: "
                    f"_smwj{wi}(*_A[_k], _mkjw({mi}, _k, _jw))",
                ]
            else:
                body += [
                    "    for _k in _RWL:",
                    f"        if _act[_k]: _smw{wi}(*_A[_k])",
                ]
        # Register stores.  Reset is low for virtually every tick of a
        # run, so runs of vector registers sharing one reset row are
        # guarded by a single hoisted ``.any()``: the common path does a
        # plain row store per register instead of a np.where.  Hoisting
        # is skipped for a reset row that is itself a register target
        # this tick (the per-store read stays, matching the scalar tick).
        reg_rows = {spec.index for spec in design.registers}
        run_rst: int | None = None
        run_hot: list[str] = []
        run_cold: list[str] = []
        hoisted: set[int] = set()

        def flush_run() -> None:
            nonlocal run_rst
            if run_rst is None:
                return
            if run_rst not in hoisted:
                hoisted.add(run_rst)
                body.append(f"    _rr{run_rst} = v[{run_rst}]")
                body.append(f"    _rb{run_rst} = _rr{run_rst}.any()")
            body.append(f"    if _rb{run_rst}:")
            body.extend(f"        {line}" for line in run_hot)
            body.append("    else:")
            body.extend(f"        {line}" for line in (run_cold or ["pass"]))
            run_rst = None
            run_hot.clear()
            run_cold.clear()

        for i, (spec, ent) in enumerate(
            zip(design.registers, reg_entries, strict=True)
        ):
            if reg_vec_ok[i]:
                ridx = spec.reset_index
                if ridx is None:
                    flush_run()
                    if spec.next_code is not None:
                        body.append(f"    v[{spec.index}] = _t{i}")
                    continue
                if ridx in reg_rows:
                    flush_run()
                    if spec.next_code is not None:
                        body.append(
                            f"    v[{spec.index}] = _vsel(v[{ridx}], "
                            f"({ent['init_v']}), _t{i})"
                        )
                    else:
                        body.append(
                            f"    v[{spec.index}] = _vsel(v[{ridx}], "
                            f"({ent['init_v']}), v[{spec.index}])"
                        )
                    continue
                if run_rst is not None and run_rst != ridx:
                    flush_run()
                run_rst = ridx
                if spec.next_code is not None:
                    run_hot.append(
                        f"v[{spec.index}] = _vsel(_rr{ridx}, "
                        f"({ent['init_v']}), _t{i})"
                    )
                    run_cold.append(f"v[{spec.index}] = _t{i}")
                else:
                    run_hot.append(
                        f"v[{spec.index}] = _vsel(_rr{ridx}, "
                        f"({ent['init_v']}), v[{spec.index}])"
                    )
            elif spec.next_code is not None:
                flush_run()
                body.append(f"    for _k in _RWL: _ss{i}(*_A[_k], _t{i}[_k])")
            else:
                flush_run()
                body.append(f"    for _k in _RWL: _ss{i}(*_A[_k])")
        flush_run()
        if len(body) == 1:
            body.append("    pass")
        return "\n".join(body)

    vtick_source = build_tick("vtick", False)
    vtick_journal_source = build_tick("vtick_journal", True)

    namespace = _vector_helpers(worlds)
    for value, cname in consts.items():
        namespace[cname] = _np.uint64(value)
    if sfn_src:
        exec(compile("\n".join(sfn_src), "<repro-mw-scalar>", "exec"), namespace)
    exec(compile(vcomb_source, "<repro-mw-comb>", "exec"), namespace)
    exec(compile(vtick_source, "<repro-mw-tick>", "exec"), namespace)
    exec(
        compile(vtick_journal_source, "<repro-mw-tick-journal>", "exec"),
        namespace,
    )

    kernels = VectorKernels(
        worlds=worlds,
        vcomb=namespace["vcomb"],
        vtick=namespace["vtick"],
        vtick_journal=namespace["vtick_journal"],
        vcomb_source=vcomb_source,
        vtick_source=vtick_source,
        vtick_journal_source=vtick_journal_source,
        namespace=namespace,
        n_vector=n_vector,
        n_scalar=n_scalar,
    )
    design._vector_kernels[worlds] = kernels
    return kernels
