"""The unified simulator interface (paper Sec. 3.3).

hgdb defines a minimum set of primitives every simulation backend must
provide — this module is the Python rendering of that interface.  The live
simulator (``repro.sim.Simulator``) and the trace replay engine
(``repro.trace.ReplayEngine``) both implement it, exactly as the paper's
Figure 1 shows VCS, Xcelium, Verilator, and the replay tool plugged into the
same runtime.

Primitives (paper's list):

* get signal value                       -> :meth:`get_value`
* get design hierarchy and clock info    -> :meth:`hierarchy`, :meth:`clock_name`
* place callbacks on clock changes       -> :meth:`add_clock_callback`
* get and set simulation time (optional) -> :meth:`get_time`, :meth:`set_time`
* set signal value (optional)            -> :meth:`set_value`
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field


class SimulatorError(Exception):
    """Raised on bad interface usage (unknown signal, unsupported op)."""


class SimulationFinished(Exception):
    """Raised internally when a ``Stop`` statement fires."""

    def __init__(self, exit_code: int = 0, time: int = 0):
        super().__init__(f"simulation finished with code {exit_code} at {time}")
        self.exit_code = exit_code
        self.time = time


@dataclass(slots=True)
class SignalInfo:
    """Metadata for one signal in the design hierarchy."""

    name: str        # local name within its instance
    path: str        # full hierarchical path
    width: int
    kind: str        # "input" | "output" | "wire" | "reg" | "node"
    signed: bool = False


@dataclass(slots=True)
class HierNode:
    """A node in the design instance tree."""

    name: str                 # instance name
    path: str                 # full hierarchical path
    module: str               # module definition name
    children: list[HierNode] = field(default_factory=list)
    signals: list[SignalInfo] = field(default_factory=list)

    def find(self, path: str) -> HierNode | None:
        """Locate a descendant (or self) by full hierarchical path."""
        if self.path == path:
            return self
        for c in self.children:
            if path == c.path or path.startswith(c.path + "."):
                return c.find(path)
        return None

    def walk(self):
        """Yield self and every descendant, pre-order."""
        yield self
        for c in self.children:
            yield from c.walk()


class SimulatorInterface(ABC):
    """What the hgdb runtime requires of any simulation backend."""

    # -- values ----------------------------------------------------------

    @abstractmethod
    def get_value(self, path: str) -> int:
        """Read the current (stable) value of a signal by full path."""

    def set_value(self, path: str, value: int) -> None:
        """Optionally drive a signal (not possible on trace files)."""
        raise SimulatorError(f"{type(self).__name__} cannot set values")

    @property
    def can_set_value(self) -> bool:
        return False

    # -- structure --------------------------------------------------------

    @abstractmethod
    def hierarchy(self) -> HierNode:
        """The design instance tree with per-instance signal lists."""

    @abstractmethod
    def clock_name(self) -> str:
        """Full path of the (single) clock driving the design."""

    # -- callbacks ----------------------------------------------------------

    @abstractmethod
    def add_clock_callback(self, fn) -> int:
        """Register ``fn(sim)`` to run at every clock posedge, after the
        design has stabilized and before state updates.  Returns an id."""

    @abstractmethod
    def remove_clock_callback(self, cb_id: int) -> None:
        """Unregister a callback by id."""

    # -- time ------------------------------------------------------------------

    @abstractmethod
    def get_time(self) -> int:
        """Current simulation time (cycles)."""

    def set_time(self, time: int) -> None:
        """Move simulation time (enables reverse debugging).

        This is the one shared time-travel code path: backends implement
        :meth:`_apply_set_time` (restore state, move the cursor) and
        every successful jump then notifies the set-time callbacks
        exactly once — so per-cycle observers (watchpoint re-priming via
        ``WatchStore.rewound``, most notably) behave identically on the
        live simulator and on trace replay.
        """
        self._apply_set_time(time)
        self._notify_set_time(time)

    def _apply_set_time(self, time: int) -> None:
        """Backend hook: restore state at ``time``.  Raise
        ``TimelineError`` (out of the retained window) or
        ``SimulatorError`` (time travel unsupported) on failure."""
        raise SimulatorError(f"{type(self).__name__} cannot move time")

    @property
    def can_set_time(self) -> bool:
        return False

    #: The backend's retained-history view (a
    #: :class:`repro.sim.timeline.TimelineView`), or None when the
    #: backend keeps no history.  The live simulator binds a compressed
    #: keyframe+delta :class:`~repro.sim.timeline.Timeline`; trace replay
    #: binds a zero-cost full-window view.
    timeline = None

    def history(
        self,
        path: str,
        start: int | None = None,
        end: int | None = None,
    ) -> list[tuple[int, int]]:
        """Windowed history query: ``[(cycle, value), ...]`` for a signal
        across the retained time-travel window.

        One implementation serves every backend: the retained cycles come
        from :attr:`timeline` and each sample is read through the same
        ``set_time``/``get_value`` path reverse debugging uses, so live
        and replayed runs answer identically.  The current time (and, on
        the live simulator, the finished flag) is restored afterwards;
        set-time callbacks fire for every hop, exactly as they would for
        manual jumps.
        """
        tl = self.timeline
        if tl is None or not self.can_set_time:
            raise SimulatorError(
                f"{type(self).__name__} keeps no history; enable snapshots "
                f"(live) or replay a trace"
            )
        t0 = self.get_time()
        token = self._retain_current_time()
        out: list[tuple[int, int]] = []
        try:
            for t in tl.times():
                if start is not None and t < start:
                    continue
                if end is not None and t > end:
                    break
                self.set_time(t)
                out.append((t, self.get_value(path)))
        finally:
            self._restore_current_time(t0, token)
        return out

    def _retain_current_time(self):
        """Backend hook before a history walk: make the *current* time a
        valid ``set_time`` target (the live simulator records a snapshot;
        a trace already retains everything).  Returns an opaque token for
        :meth:`_restore_current_time`."""
        return None

    def _restore_current_time(self, t0: int, token) -> None:
        """Backend hook after a history walk: return to ``t0``."""
        if self.get_time() != t0:
            self.set_time(t0)

    # Time-jump notification: backends that implement set_time call
    # _notify_set_time after restoring state, so per-cycle observers
    # (watchpoints tracking last-seen values, most notably) can re-prime
    # against the restored state instead of comparing across the jump.

    def add_set_time_callback(self, fn) -> int:
        """Register ``fn(sim, time)`` to run after every successful
        ``set_time``.  Returns an id for :meth:`remove_set_time_callback`."""
        cbs = self.__dict__.setdefault("_set_time_callbacks", {})
        cb_id = self.__dict__.get("_next_set_time_cb_id", 1)
        self.__dict__["_next_set_time_cb_id"] = cb_id + 1
        cbs[cb_id] = fn
        return cb_id

    def remove_set_time_callback(self, cb_id: int) -> None:
        """Unregister a time-jump callback by id."""
        self.__dict__.get("_set_time_callbacks", {}).pop(cb_id, None)

    def _notify_set_time(self, time: int) -> None:
        for fn in tuple(self.__dict__.get("_set_time_callbacks", {}).values()):
            fn(self, time)

    @property
    def is_replay(self) -> bool:
        """True when this backend replays a trace (no live stimulus)."""
        return False

    # -- batch driving -----------------------------------------------------

    def run_cycles(
        self,
        cycles: int,
        stimulus=None,
        on_progress=None,
        progress_every: int = 0,
    ) -> int:
        """Drive the backend for up to ``cycles`` clock cycles.

        The non-interactive run loop shard workers and batch jobs share:
        per cycle, ``stimulus(sim, cycle)`` (when given) applies input
        pokes *before* the clock edge, then time advances one cycle; every
        ``progress_every`` completed cycles ``on_progress(sim, done)``
        reports liveness.  Stops early when the backend reports completion
        (a fired ``Stop``, or the end of a replayed trace).  Returns the
        number of cycles actually run.

        The default implementation drives any backend exposing a
        ``step(cycles)`` method (both the live simulator and the replay
        engine do); backends without one must override.
        """
        step = getattr(self, "step", None)
        if step is None:
            raise SimulatorError(f"{type(self).__name__} cannot advance time")
        done = 0
        for cycle in range(cycles):
            if getattr(self, "finished", False) or getattr(self, "at_end", False):
                break
            if stimulus is not None:
                stimulus(self, cycle)
            step(1)
            done += 1
            if (
                on_progress is not None
                and progress_every
                and done % progress_every == 0
            ):
                on_progress(self, done)
        return done
