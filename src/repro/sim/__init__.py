"""repro.sim — a zero-delay, cycle-based RTL simulator.

``Simulator`` executes the compiled Low form and implements the unified
simulator interface (paper Sec. 3.3) used by the hgdb runtime; the same
interface is implemented by ``repro.trace.ReplayEngine`` for offline traces.
"""

from .compiler import CombLoopError, CompiledDesign, compile_design
from .engine import Simulator
from .interface import (
    HierNode,
    SignalInfo,
    SimulationFinished,
    SimulatorError,
    SimulatorInterface,
)
from .store import (
    ArrayStore,
    ListStore,
    NumpyStore,
    ValueStore,
    make_store,
    numpy_available,
    resolve_store_kind,
)
from .testbench import Driver, Monitor, Testbench, Transaction

__all__ = [
    "ArrayStore",
    "CombLoopError",
    "CompiledDesign",
    "Driver",
    "HierNode",
    "ListStore",
    "Monitor",
    "NumpyStore",
    "SignalInfo",
    "SimulationFinished",
    "Simulator",
    "SimulatorError",
    "SimulatorInterface",
    "Testbench",
    "Transaction",
    "ValueStore",
    "compile_design",
    "make_store",
    "numpy_available",
    "resolve_store_kind",
]
