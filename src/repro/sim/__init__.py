"""repro.sim — a zero-delay, cycle-based RTL simulator.

``Simulator`` executes the compiled Low form and implements the unified
simulator interface (paper Sec. 3.3) used by the hgdb runtime; the same
interface is implemented by ``repro.trace.ReplayEngine`` for offline traces.
"""

from .compiler import (
    CombLoopError,
    CompiledDesign,
    VectorKernels,
    compile_design,
    compile_vector,
)
from .engine import Simulator
from .manyworlds import ManyWorldsSimulator, make_sweep_stimulus
from .interface import (
    HierNode,
    SignalInfo,
    SimulationFinished,
    SimulatorError,
    SimulatorInterface,
)
from .store import (
    ArrayStore,
    ListStore,
    MatrixStore,
    NumpyStore,
    ValueStore,
    make_store,
    numpy_available,
    resolve_store_kind,
)
from .testbench import Driver, Monitor, Testbench, Transaction
from .timeline import (
    FullTraceTimeline,
    Timeline,
    TimelineError,
    TimelineView,
    first_timeline_divergence,
)

__all__ = [
    "ArrayStore",
    "CombLoopError",
    "CompiledDesign",
    "Driver",
    "FullTraceTimeline",
    "HierNode",
    "ListStore",
    "ManyWorldsSimulator",
    "MatrixStore",
    "Monitor",
    "NumpyStore",
    "SignalInfo",
    "SimulationFinished",
    "Simulator",
    "SimulatorError",
    "SimulatorInterface",
    "Testbench",
    "Timeline",
    "TimelineError",
    "TimelineView",
    "Transaction",
    "ValueStore",
    "VectorKernels",
    "compile_design",
    "compile_vector",
    "first_timeline_divergence",
    "make_store",
    "make_sweep_stimulus",
    "numpy_available",
    "resolve_store_kind",
]
