"""The shard coordinator: elaborate once, fan out, aggregate.

:class:`ShardSession` is the service shape of the ROADMAP's "millions of
users" north star in miniature: the design is elaborated and compiled
**once**, its symbol table is served over the existing RPC protocol
(``symtable/rpc.py``), and N worker processes — forked so they inherit
the compiled design for free — each run one :class:`ShardSpec` with their
own ``Simulator`` + ``Runtime``, streaming hit/progress events back over
per-worker pipes as JSON lines.  The coordinator multiplexes those pipes
onto one event queue, refills the worker pool as shards finish, and hands
the merged results to :class:`~repro.shard.aggregate.ShardReport`.

``workers=0`` runs every shard inline in this process (no fork, native
symbol table) — the reference semantics the multi-process path is tested
against, and the fallback on platforms without ``fork``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..sim.compiler import compile_design
from ..symtable.rpc import SymbolTableServer
from ..symtable.writer import write_symbol_table
from ..symtable.query import SQLiteSymbolTable
from .aggregate import ShardReport
from .spec import ShardError, ShardResult, ShardSpec, make_sweep
from .wire import WireError, decode_line
from .worker import run_shard, worker_entry


def default_workers(n_shards: int) -> int:
    """Worker-pool size when the caller does not pin one: one process per
    available CPU, never more than there are shards."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(n_shards, cpus))


@dataclass(slots=True)
class _Worker:
    """One in-flight shard: its process and the pipe pump draining it."""

    spec: ShardSpec
    proc: object
    conn: object
    pump: threading.Thread


class ShardSession:
    """Run shard sweeps of one design and aggregate the hits.

    Args:
        design: a compiled :class:`repro.Design` (symbol table generated
            automatically) or a bare Low-form ``Circuit`` (then
            ``symtable`` is required).
        symtable: the symbol table to serve to workers; defaults to
            ``write_symbol_table(design)`` for a ``Design``.
        workers: pool size for :meth:`run`.  ``None`` sizes to the machine
            (:func:`default_workers`); ``0`` forces inline execution.
        fast: forwarded to each worker's ``Simulator``.
        compiled: reuse an existing ``CompiledDesign`` (e.g. the one a
            live console session is already running) instead of compiling
            the circuit again; this also preserves its ``top_path``.
    """

    def __init__(self, design, symtable=None, workers: int | None = None,
                 fast: bool = True, compiled=None):
        low = getattr(design, "low", None)
        self.circuit = low if low is not None else design
        if symtable is None:
            if low is None:
                raise ShardError(
                    "a bare circuit needs an explicit symbol table"
                )
            symtable = SQLiteSymbolTable(write_symbol_table(design))
        self.symtable = symtable
        self.workers = workers
        self.fast = fast
        # Elaborate/compile once; forked workers inherit this copy.
        self.compiled = (
            compiled if compiled is not None
            else compile_design(self.circuit, None)
        )
        self._server: SymbolTableServer | None = None

    # -- lifecycle ---------------------------------------------------------

    def _serve(self) -> tuple[str, int]:
        if self._server is None:
            self._server = SymbolTableServer(self.symtable)
            self._server.start()
        return self._server.address

    def close(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None

    def __enter__(self) -> "ShardSession":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- running -----------------------------------------------------------

    def sweep(
        self,
        shards: int,
        cycles: int,
        seed_base: int = 0,
        breakpoints=(),
        watchpoints=(),
        overrides: dict | None = None,
        reset_cycles: int = 1,
        hit_limit: int | None = None,
        on_event=None,
        timeout: float | None = None,
        timeline_cycles: int = 0,
    ) -> ShardReport:
        """Run the canonical seed sweep (see :func:`make_sweep`).

        ``timeline_cycles > 0`` makes every shard retain (and ship) its
        last N cycles of rle-compressed state history, enabling the
        report's localized :meth:`~ShardReport.timeline_divergences`.
        """
        specs = make_sweep(
            shards, cycles, seed_base=seed_base, overrides=overrides,
            breakpoints=breakpoints, watchpoints=watchpoints,
            reset_cycles=reset_cycles, hit_limit=hit_limit,
            timeline_cycles=timeline_cycles,
        )
        return self.run(specs, on_event=on_event, timeout=timeout)

    def run(
        self,
        specs: list[ShardSpec],
        on_event=None,
        timeout: float | None = None,
    ) -> ShardReport:
        """Run every spec and return the aggregated report.

        ``on_event`` receives every decoded worker event (hits, progress,
        warnings, completion) as it arrives.  ``timeout`` bounds the wait
        for *any* event; on expiry live workers are terminated and the
        sweep raises :class:`ShardError`.
        """
        if not specs:
            raise ShardError("nothing to run: empty spec list")
        ids = [s.shard_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ShardError(f"duplicate shard ids in sweep: {sorted(ids)}")
        t0 = time.perf_counter()
        workers = self.workers
        if workers is None:
            workers = default_workers(len(specs))
        if workers <= 0 or not _fork_available():
            report = self._run_inline(specs, on_event)
        else:
            report = self._run_pool(specs, workers, on_event, timeout)
        report.wall_time_s = time.perf_counter() - t0
        return report

    def _report(self, results: list[ShardResult]) -> ShardReport:
        """Aggregate with the compiled design's signal/memory names, so
        timeline divergences localize to hierarchical paths."""
        return ShardReport(
            results,
            signal_names=[s.path for s in self.compiled.signals],
            mem_names=[m.path for m in self.compiled.mems],
        )

    def _run_inline(self, specs: list[ShardSpec], on_event) -> ShardReport:
        results = [
            run_shard(
                self.circuit, self.symtable, spec,
                emit=on_event, compiled=self.compiled, fast=self.fast,
            )
            for spec in specs
        ]
        return self._report(results)

    def _run_pool(
        self,
        specs: list[ShardSpec],
        workers: int,
        on_event,
        timeout: float | None,
    ) -> ShardReport:
        host, port = self._serve()
        ctx = multiprocessing.get_context("fork")
        events: queue.Queue = queue.Queue()
        pending = deque(specs)
        active: dict[int, _Worker] = {}
        results: dict[int, ShardResult] = {}

        def launch(spec: ShardSpec) -> None:
            r_conn, w_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=worker_entry,
                args=(
                    self.circuit, self.compiled, spec.to_wire(),
                    host, port, w_conn,
                ),
                daemon=True,
            )
            proc.start()
            # Close the parent's copy of the write end *before* the next
            # launch: later children must not inherit it, or this pipe
            # would never report EOF if its worker crashes.
            w_conn.close()
            pump = threading.Thread(
                target=_pump_pipe, args=(r_conn, spec.shard_id, events),
                daemon=True,
            )
            pump.start()
            active[spec.shard_id] = _Worker(spec, proc, r_conn, pump)

        while pending and len(active) < workers:
            launch(pending.popleft())

        try:
            while active:
                try:
                    kind, shard_id, payload = events.get(timeout=timeout)
                except queue.Empty:
                    raise ShardError(
                        f"sweep timed out after {timeout}s with "
                        f"{len(active)} worker(s) outstanding"
                    ) from None
                if kind == "event":
                    if on_event is not None:
                        on_event(payload)
                    name = payload["event"]
                    if name == "done":
                        results[shard_id] = ShardResult.from_wire(
                            payload["result"]
                        )
                    elif name == "error":
                        w = active.get(shard_id)
                        seed = w.spec.seed if w is not None else -1
                        results[shard_id] = ShardResult(
                            shard_id, seed, 0, error=payload["message"]
                        )
                else:  # pipe EOF: the worker is gone
                    w = active.pop(shard_id)
                    w.proc.join(timeout=30)
                    if shard_id not in results:
                        results[shard_id] = ShardResult(
                            shard_id, w.spec.seed, 0,
                            error=(
                                "worker exited without reporting "
                                f"(exit code {w.proc.exitcode})"
                            ),
                        )
                    if pending:
                        launch(pending.popleft())
        finally:
            for w in active.values():
                if w.proc.is_alive():
                    w.proc.terminate()
                w.proc.join(timeout=5)

        return self._report([results[s.shard_id] for s in specs])


def _pump_pipe(conn, shard_id: int, events: queue.Queue) -> None:
    """Reader thread: drain one worker's pipe into the shared queue."""
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            break
        try:
            events.put(("event", shard_id, decode_line(data)))
        except WireError:
            # A corrupt line is dropped, not fatal: the worker's `done`
            # event (or pipe EOF) still decides the shard's outcome.
            continue
    try:
        conn.close()
    except OSError:
        pass
    events.put(("eof", shard_id, None))


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()
