"""The shard coordinator: elaborate once, fan out, aggregate.

:class:`ShardSession` is the service shape of the ROADMAP's "millions of
users" north star in miniature: the design is elaborated and compiled
**once**, its symbol table is served over the existing RPC protocol
(``symtable/rpc.py``), and N worker processes — forked so they inherit
the compiled design for free — each run one :class:`ShardSpec` with their
own ``Simulator`` + ``Runtime``, streaming hit/progress events back over
per-worker pipes as JSON lines.  The coordinator multiplexes those pipes
onto one event queue, refills the worker pool as shards finish, and hands
the merged results to :class:`~repro.shard.aggregate.ShardReport`.

``workers=0`` runs every shard inline in this process (no fork, native
symbol table) — the reference semantics the multi-process path is tested
against, and the fallback on platforms without ``fork``.
"""

from __future__ import annotations

import contextlib
import itertools
import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..obs import make_obs
from ..sim.compiler import compile_design
from ..symtable.rpc import SymbolTableServer
from ..symtable.writer import write_symbol_table
from ..symtable.query import SQLiteSymbolTable
from .aggregate import ShardReport
from .spec import (
    ShardError,
    ShardResult,
    ShardSpec,
    WorldGroupSpec,
    group_worlds,
    make_sweep,
)
from .supervise import (
    CORRUPT,
    CRASH,
    ERROR,
    HANG,
    RPC,
    DeadlinePolicy,
    RetryPolicy,
    as_deadline_policy,
    failure_record,
)
from .wire import WireError, decode_line
from .worker import run_shard, run_world_group, worker_entry


#: distinguishes "kwarg not passed" from an explicit value (None included)
_UNSET = object()


def default_workers(n_shards: int) -> int:
    """Worker-pool size when the caller does not pin one: one process per
    available CPU, never more than there are shards."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(n_shards, cpus))


@dataclass(slots=True)
class _Job:
    """One shard's journey through the supervisor: its spec, which
    attempt is next (1-based), the failure records accumulated so far,
    and — while waiting out a retry backoff — when it may relaunch."""

    spec: ShardSpec
    attempt: int = 1
    failures: list = field(default_factory=list)
    ready_at: float = 0.0


@dataclass(slots=True)
class _WorkerState:
    """One in-flight worker attempt: process, pipe pump, and the
    liveness bookkeeping the supervisor tracks against it."""

    job: _Job
    token: int                 # unique per attempt: event attribution key
    proc: object
    conn: object
    pump: threading.Thread
    started: float
    deadline: float | None     # absolute monotonic attempt deadline
    last_beat: float           # monotonic time of the last event seen
    started_wall: float = 0.0  # wall-clock launch time (trace span anchor)
    corrupt_seen: int = 0      # undecodable wire lines this attempt
    settled: bool = False      # outcome decided (done/error/hang)


@dataclass(slots=True)
class _Zombie:
    """A terminated worker awaiting death: past ``kill_at`` the
    supervisor escalates from SIGTERM to SIGKILL."""

    proc: object
    kill_at: float
    killed: bool = False


class ShardSession:
    """Run shard sweeps of one design and aggregate the hits.

    Args:
        design: a compiled :class:`repro.Design` (symbol table generated
            automatically) or a bare Low-form ``Circuit`` (then
            ``symtable`` is required).
        symtable: the symbol table to serve to workers; defaults to
            ``write_symbol_table(design)`` for a ``Design``.
        workers: pool size for :meth:`run`.  ``None`` sizes to the machine
            (:func:`default_workers`); ``0`` forces inline execution.
        fast: forwarded to each worker's ``Simulator`` (deprecated; pass
            ``options=SessionOptions(fast=...)``).
        compiled: reuse an existing ``CompiledDesign`` (e.g. the one a
            live console session is already running) instead of compiling
            the circuit again; this also preserves its ``top_path``.
        obs: observability depth (``repro.obs``): an ``Obs``, a mode
            string, or None (``configure``/``$REPRO_OBS``).  Deprecated;
            pass ``options=SessionOptions(obs=...)``.  The session
            holds the **coordinator-side** telemetry — attempt/retry/
            termination counts, the heartbeat gap histogram, sweep and
            per-attempt spans — while each worker (forked or inline)
            builds its own per-shard ``Obs`` from the same mode; the
            aggregated :class:`ShardReport` merges both sides, and
            ``report.write_chrome_trace`` puts them on one timeline.
        options: a :class:`repro.hub.SessionOptions` — the shared session
            configuration record (``fast``/``obs`` here; other fields are
            per-shard and come from the :class:`ShardSpec`).
    """

    def __init__(self, design, symtable=None, workers: int | None = None,
                 fast=_UNSET, compiled=None, obs=_UNSET, options=None):
        # Imported here (not at module top) to keep this package importable
        # in any order relative to repro.hub (which lazily imports us for
        # SessionHandle.shard_sweep).
        from ..hub.api import resolve_session_options

        legacy = {}
        if fast is not _UNSET:
            legacy["fast"] = fast
        if obs is not _UNSET:
            legacy["obs"] = obs
        opt = resolve_session_options(options, legacy, "ShardSession")
        self.options = opt
        self.obs = make_obs(opt.obs, proc="coordinator")
        low = getattr(design, "low", None)
        self.circuit = low if low is not None else design
        if symtable is None:
            if low is None:
                raise ShardError(
                    "a bare circuit needs an explicit symbol table"
                )
            symtable = SQLiteSymbolTable(write_symbol_table(design))
        self.symtable = symtable
        self.workers = workers
        self.fast = opt.fast
        # Elaborate/compile once; forked workers inherit this copy.
        self.compiled = (
            compiled if compiled is not None
            else compile_design(self.circuit, None)
        )
        self._server: SymbolTableServer | None = None

    # -- lifecycle ---------------------------------------------------------

    def _serve(self) -> tuple[str, int]:
        if self._server is None:
            self._server = SymbolTableServer(self.symtable)
            self._server.start()
        return self._server.address

    def close(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None

    def __enter__(self) -> ShardSession:
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- running -----------------------------------------------------------

    def sweep(
        self,
        shards: int,
        cycles: int,
        seed_base: int = 0,
        breakpoints=(),
        watchpoints=(),
        overrides: dict | None = None,
        reset_cycles: int = 1,
        hit_limit: int | None = None,
        on_event=None,
        timeout: float | None = None,
        timeline_cycles: int = 0,
        retry: RetryPolicy | None = None,
        deadline: DeadlinePolicy | float | None = None,
        faults=None,
        worlds_per_shard: int = 0,
    ) -> ShardReport:
        """Run the canonical seed sweep (see :func:`make_sweep`).

        ``timeline_cycles > 0`` makes every shard retain (and ship) its
        last N cycles of rle-compressed state history, enabling the
        report's localized :meth:`~ShardReport.timeline_divergences`.
        ``retry``/``deadline``/``faults`` are forwarded to :meth:`run`.

        ``worlds_per_shard > 1`` packs that many consecutive shards into
        each worker as scenario *worlds* of one vectorized many-worlds
        simulator (:class:`~repro.shard.spec.WorldGroupSpec`), so
        processes × SIMD compose: the report is flattened back to one
        result per shard, digest-identical to the unpacked sweep.
        Groups that arm breakpoints/watchpoints/hit limits/timeline
        streaming — or run where numpy is unavailable — transparently
        fall back to sequential member execution inside the worker.
        """
        specs = make_sweep(
            shards, cycles, seed_base=seed_base, overrides=overrides,
            breakpoints=breakpoints, watchpoints=watchpoints,
            reset_cycles=reset_cycles, hit_limit=hit_limit,
            timeline_cycles=timeline_cycles,
        )
        return self.run(
            group_worlds(specs, worlds_per_shard),
            on_event=on_event, timeout=timeout,
            retry=retry, deadline=deadline, faults=faults,
        )

    def run(
        self,
        specs: list[ShardSpec],
        on_event=None,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        deadline: DeadlinePolicy | float | None = None,
        faults=None,
    ) -> ShardReport:
        """Run every spec and return the aggregated report.

        ``on_event`` receives every decoded worker event (hits, progress,
        heartbeats, warnings, completion) as it arrives, augmented with
        the attempt number (``event["attempt"]``) so listeners can tell
        a retried shard's replayed hits from its first try.

        ``timeout`` is a **wall-clock deadline for the whole sweep**: on
        expiry live workers are terminated (then killed) and the sweep
        raises :class:`ShardError`, no matter how chatty the event stream
        is.  ``retry`` (default: :class:`RetryPolicy` ()) governs how
        failed worker attempts — crashes, hangs, corrupt wire — are
        retried and degraded to inline execution; ``deadline`` (a
        :class:`DeadlinePolicy`, or a flat per-attempt seconds value)
        arms per-shard wall-clock deadlines and heartbeat monitoring;
        ``faults`` (a :class:`repro.faults.FaultPlan`) deterministically
        injects failures into forked attempts — chaos testing only, the
        inline path never runs faults.
        """
        if not specs:
            raise ShardError("nothing to run: empty spec list")
        ids = [
            m.shard_id
            for s in specs
            for m in (s.members if isinstance(s, WorldGroupSpec) else (s,))
        ]
        if len(set(ids)) != len(ids):
            raise ShardError(f"duplicate shard ids in sweep: {sorted(ids)}")
        t0 = time.perf_counter()
        workers = self.workers
        if workers is None:
            workers = default_workers(len(specs))
        with self.obs.span("shard.sweep", shards=len(specs), workers=workers):
            report = (
                self._run_inline(specs, on_event)
                if workers <= 0 or not _fork_available()
                else self._run_pool(
                    specs, workers, on_event, timeout,
                    retry if retry is not None else RetryPolicy(),
                    as_deadline_policy(deadline), faults,
                )
            )
        report.wall_time_s = time.perf_counter() - t0
        report.coordinator_obs = self.obs.to_wire()
        return report

    def _report(self, results: list[ShardResult]) -> ShardReport:
        """Aggregate with the compiled design's signal/memory names, so
        timeline divergences localize to hierarchical paths."""
        return ShardReport(
            results,
            signal_names=[s.path for s in self.compiled.signals],
            mem_names=[m.path for m in self.compiled.mems],
        )

    def _run_inline(self, specs: list[ShardSpec], on_event) -> ShardReport:
        # Each shard still gets its own per-shard Obs (fresh registry,
        # shard label) built from the session's mode, exactly like a
        # forked worker would — aggregation is path-independent.
        results = []
        for spec in specs:
            if isinstance(spec, WorldGroupSpec):
                results.extend(
                    run_world_group(
                        self.circuit, self.symtable, spec,
                        emit=on_event, compiled=self.compiled,
                        fast=self.fast, obs=self.obs.mode,
                    )
                )
            else:
                results.append(
                    run_shard(
                        self.circuit, self.symtable, spec,
                        emit=on_event, compiled=self.compiled,
                        fast=self.fast, obs=self.obs.mode,
                    )
                )
        return self._report(results)

    def _run_fallback(self, job: _Job, on_event):
        """Graceful degradation: run one retry-exhausted shard inline.

        The inline path shares nothing with the failed attempts' fork +
        pipe + RPC machinery, so infrastructure faults cannot reach it;
        results carry the full attempt/failure history.  Returns one
        :class:`ShardResult` — or a list of them for a world group job.
        """
        job.attempt += 1
        spec = job.spec
        emit = None
        if on_event is not None:
            def emit(event: dict) -> None:
                event = dict(event)
                event["attempt"] = job.attempt
                on_event(event)
        grouped = isinstance(spec, WorldGroupSpec)
        try:
            if grouped:
                results = run_world_group(
                    self.circuit, self.symtable, spec,
                    emit=emit, compiled=self.compiled, fast=self.fast,
                    obs=self.obs.mode,
                )
            else:
                results = [run_shard(
                    self.circuit, self.symtable, spec,
                    emit=emit, compiled=self.compiled, fast=self.fast,
                    obs=self.obs.mode,
                )]
        except Exception as exc:  # noqa: BLE001 - degradation boundary
            message = (
                f"inline fallback failed: {type(exc).__name__}: {exc}"
            )
            members = spec.members if grouped else (spec,)
            results = [
                ShardResult(m.shard_id, m.seed, 0, error=message)
                for m in members
            ]
        for res in results:
            res.attempts = job.attempt
            res.failures = list(job.failures)
        return results if grouped else results[0]

    def _run_pool(
        self,
        specs: list[ShardSpec],
        workers: int,
        on_event,
        timeout: float | None,
        retry: RetryPolicy,
        deadline: DeadlinePolicy | None,
        faults,
    ) -> ShardReport:
        host, port = self._serve()
        if self._server is not None:
            # RPC response faults (delay/drop) are injected server-side;
            # reset on every run so a later fault-free sweep is clean.
            self._server.faults = (
                faults.rpc_injector() if faults is not None else None
            )
        ctx = multiprocessing.get_context("fork")
        events: queue.Queue = queue.Queue()
        now = time.monotonic
        # Coordinator-side supervision metrics, resolved once; every
        # per-event touch below is guarded by a single `is not None`.
        m = self.obs.metrics
        c_attempts = c_retries = c_terms = hb_hist = None
        if m is not None:
            c_attempts = m.counter(
                "shard_attempts_total", "Worker attempts launched"
            )
            c_retries = m.counter(
                "shard_retries_total", "Failed attempts that were retried"
            )
            c_terms = m.counter(
                "shard_terminations_total",
                "Workers terminated by the supervisor (hang/cleanup)",
            )
            hb_hist = m.histogram(
                "shard_heartbeat_gap_seconds",
                "Gap between consecutive events from a live worker",
                bounds=(0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0),
            )
        # `timeout` is a wall-clock budget for the WHOLE sweep: a fixed
        # deadline computed once, not a per-event wait that a chatty
        # worker could reset indefinitely.
        sweep_deadline = now() + timeout if timeout is not None else None
        hb = deadline.heartbeat_timeout_s if deadline is not None else None

        pending: deque[_Job] = deque(_Job(spec) for spec in specs)
        waiting: list[_Job] = []            # retries sitting out a backoff
        active: dict[int, _WorkerState] = {}
        zombies: list[_Zombie] = []
        results: dict[int, ShardResult] = {}
        fallback: list[_Job] = []
        tokens = itertools.count(1)

        def launch(job: _Job) -> None:
            # Events are attributed by a per-attempt token, not by shard
            # id: a terminated attempt's pump may still drain buffered
            # lines after its shard has been relaunched, and those must
            # never be credited to the new attempt.
            token = next(tokens)
            r_conn, w_conn = ctx.Pipe(duplex=False)
            fault = (
                faults.fault_for(job.spec.shard_id, job.attempt, job.spec.cycles)
                if faults is not None else None
            )
            proc = ctx.Process(
                target=worker_entry,
                args=(
                    self.circuit, self.compiled, job.spec.to_wire(),
                    host, port, w_conn,
                ),
                kwargs={"fault": fault, "obs_mode": self.obs.mode},
                daemon=True,
            )
            if c_attempts is not None:
                c_attempts.inc()
            proc.start()
            # Close the parent's copy of the write end *before* the next
            # launch: later children must not inherit it, or this pipe
            # would never report EOF if its worker crashes.
            w_conn.close()
            pump = threading.Thread(
                target=_pump_pipe, args=(r_conn, token, events),
                daemon=True,
            )
            pump.start()
            t = now()
            active[token] = _WorkerState(
                job=job, token=token, proc=proc, conn=r_conn, pump=pump,
                started=t, last_beat=t, started_wall=time.time(),
                deadline=(
                    t + deadline.deadline_for(job.spec.cycles)
                    if deadline is not None else None
                ),
            )

        def attempt_span(st: _WorkerState, outcome: str) -> None:
            """Record the settled attempt as a coordinator-side span."""
            tracer = self.obs.tracer
            if tracer is None:
                return
            tracer.record_span(
                "shard.attempt",
                wall=st.started_wall,
                dur=now() - st.started,
                args={
                    "shard": st.job.spec.shard_id,
                    "attempt": st.job.attempt,
                    "outcome": outcome,
                },
            )

        def retire(proc) -> None:
            """Terminate a worker and queue the SIGKILL escalation."""
            if proc.is_alive():
                proc.terminate()
                if c_terms is not None:
                    c_terms.inc()
            grace = deadline.kill_grace_s if deadline is not None else 2.0
            zombies.append(_Zombie(proc, now() + grace))

        def settle_failure(st: _WorkerState, fclass: str, message: str) -> None:
            """One attempt failed: retry, degrade inline, or go terminal."""
            st.settled = True
            attempt_span(st, fclass)
            job = st.job
            job.failures.append(
                failure_record(job.attempt, fclass, message, now() - st.started)
            )
            if retry.should_retry(fclass, job.attempt):
                if c_retries is not None:
                    c_retries.inc()
                job.attempt += 1
                job.ready_at = now() + retry.backoff_for(job.attempt - 1)
                waiting.append(job)
            elif retry.wants_fallback(fclass):
                fallback.append(job)
            else:
                # Terminal: every member of a world group job shares the
                # attempt's fate (one process ran them all).
                spec = job.spec
                grouped = isinstance(spec, WorldGroupSpec)
                settled = [
                    ShardResult(
                        m.shard_id, m.seed, 0,
                        error=message, attempts=job.attempt,
                        failures=list(job.failures),
                    )
                    for m in (spec.members if grouped else (spec,))
                ]
                results[spec.shard_id] = settled if grouped else settled[0]

        def sweep_expired() -> ShardError:
            outstanding = sorted(
                {st.job.spec.shard_id for st in active.values()}
                | {j.spec.shard_id for j in pending}
                | {j.spec.shard_id for j in waiting}
                | {j.spec.shard_id for j in fallback}
            )
            return ShardError(
                f"sweep timed out after {timeout}s with shard(s) "
                f"{outstanding} unresolved"
            )

        try:
            while active or pending or waiting:
                t = now()
                if sweep_deadline is not None and t >= sweep_deadline:
                    raise sweep_expired()
                # Promote retries whose backoff elapsed, refill the pool.
                for job in [j for j in waiting if j.ready_at <= t]:
                    waiting.remove(job)
                    pending.append(job)
                while pending and len(active) < workers:
                    launch(pending.popleft())
                # Reap terminated workers; past the grace period, escalate
                # terminate() to kill().
                for z in zombies[:]:
                    if not z.proc.is_alive():
                        z.proc.join(timeout=0)
                        zombies.remove(z)
                    elif not z.killed and t >= z.kill_at:
                        z.proc.kill()
                        z.killed = True
                # Hung-worker detection: per-attempt deadline, or event
                # silence past the heartbeat timeout.
                for token, st in list(active.items()):
                    if st.settled:
                        continue
                    over_deadline = st.deadline is not None and t >= st.deadline
                    silent = hb is not None and t - st.last_beat >= hb
                    if over_deadline or silent:
                        active.pop(token)
                        retire(st.proc)
                        why = (
                            "attempt deadline exceeded" if over_deadline
                            else f"no event for {hb}s"
                        )
                        settle_failure(
                            st, HANG,
                            f"worker hung ({why}, {t - st.started:.2f}s "
                            f"into the attempt)",
                        )
                wait = _next_wait(
                    t, sweep_deadline, active, waiting, zombies, hb
                )
                try:
                    kind, token, payload = events.get(timeout=wait)
                except queue.Empty:
                    continue
                st = active.get(token)
                if kind == "corrupt":
                    # Undecodable line: dropped, never fatal mid-run — but
                    # counted, so an attempt that ends without a decodable
                    # `done` is classified as wire corruption.  Garbage is
                    # still proof of life.
                    if st is not None:
                        st.corrupt_seen += 1
                        st.last_beat = now()
                elif kind == "event":
                    if st is None:
                        continue  # stale: a settled/terminated attempt
                    name = payload["event"]
                    if hb_hist is not None and name == "heartbeat":
                        # Gap since the previous proof of life: the
                        # distribution the deadline policy's heartbeat
                        # timeout should sit safely above.
                        hb_hist.observe(now() - st.last_beat)
                    st.last_beat = now()
                    if on_event is not None:
                        shown = dict(payload)
                        shown["attempt"] = st.job.attempt
                        on_event(shown)
                    if name == "done":
                        st.settled = True
                        attempt_span(st, "ok")
                        wire = payload["result"]
                        if "group" in wire:
                            # One done line settles every member of a
                            # world group attempt.
                            res = [
                                ShardResult.from_wire(w)
                                for w in wire["group"]
                            ]
                            for r in res:
                                r.attempts = st.job.attempt
                                r.failures = list(st.job.failures)
                        else:
                            res = ShardResult.from_wire(wire)
                            res.attempts = st.job.attempt
                            res.failures = list(st.job.failures)
                        results[st.job.spec.shard_id] = res
                    elif name == "error":
                        # The worker reported its own exception.  A
                        # transient one (its RPC transport gave out) is
                        # infrastructure and retries; anything else is a
                        # clean, deterministic failure (class "error").
                        fclass = RPC if payload.get("transient") else ERROR
                        settle_failure(st, fclass, payload["message"])
                else:  # pipe EOF: the worker attempt is over
                    if st is None:
                        continue  # already settled (e.g. hung + retired)
                    active.pop(token)
                    # Never stall the event loop waiting on a dead-ish
                    # process (the old code blocked up to 30s here): give
                    # it a moment, then terminate and let the zombie
                    # escalation finish the job.
                    st.proc.join(timeout=0.2)
                    if st.proc.is_alive():
                        retire(st.proc)
                    if not st.settled:
                        if st.corrupt_seen:
                            settle_failure(
                                st, CORRUPT,
                                f"worker wire corrupted ({st.corrupt_seen} "
                                f"undecodable line(s), no result)",
                            )
                        else:
                            settle_failure(
                                st, CRASH,
                                "worker exited without reporting "
                                f"(exit code {st.proc.exitcode})",
                            )
            # Graceful degradation: retry-exhausted shards run inline.
            for job in fallback:
                if sweep_deadline is not None and now() >= sweep_deadline:
                    raise sweep_expired()
                results[job.spec.shard_id] = self._run_fallback(job, on_event)
        finally:
            procs = [st.proc for st in active.values()]
            procs += [z.proc for z in zombies]
            for p in procs:
                if p.is_alive():
                    p.terminate()
            stop_at = time.monotonic() + 5.0
            for p in procs:
                p.join(timeout=max(0.0, stop_at - time.monotonic()))
                if p.is_alive():
                    # terminate() was not enough (SIGTERM masked or the
                    # worker is wedged in uninterruptible state): escalate.
                    p.kill()
            for p in procs:
                if p.is_alive():
                    p.join(timeout=5)
            if self._server is not None:
                self._server.faults = None

        flat: list[ShardResult] = []
        for s in specs:
            res = results[s.shard_id]
            flat.extend(res) if isinstance(res, list) else flat.append(res)
        return self._report(flat)


def _next_wait(
    t: float,
    sweep_deadline: float | None,
    active: dict,
    waiting: list,
    zombies: list,
    hb: float | None,
) -> float | None:
    """How long the event loop may block: until the nearest deadline —
    sweep budget, per-attempt deadline, heartbeat silence bound, retry
    backoff expiry, or zombie kill escalation.  None blocks until the
    next event (nothing is time-driven)."""
    cands = []
    if sweep_deadline is not None:
        cands.append(sweep_deadline - t)
    for st in active.values():
        if st.settled:
            continue
        if st.deadline is not None:
            cands.append(st.deadline - t)
        if hb is not None:
            cands.append(st.last_beat + hb - t)
    for job in waiting:
        cands.append(job.ready_at - t)
    for z in zombies:
        # Killed zombies die imminently; poll briefly to reap them.
        cands.append(z.kill_at - t if not z.killed else 0.05)
    if not cands:
        return None
    return max(0.01, min(cands) + 0.001)


def _pump_pipe(conn, token: int, events: queue.Queue) -> None:
    """Reader thread: drain one worker's pipe into the shared queue.

    Keyed by the attempt token (not the shard id) so stale lines from a
    terminated attempt can never be credited to its replacement."""
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            break
        try:
            events.put(("event", token, decode_line(data)))
        except WireError:
            events.put(("corrupt", token, None))
    with contextlib.suppress(OSError):
        conn.close()
    events.put(("eof", token, None))


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()
