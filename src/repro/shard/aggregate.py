"""Cross-shard aggregation: merge per-shard hit records into one view.

The coordinator hands every :class:`~repro.shard.spec.ShardResult` to a
:class:`ShardReport`, which answers the questions a sweep is run for:

* **first hits** — the earliest (cycle, shard) at which each breakpoint
  location fired anywhere in the sweep (bug triage: "which seed reaches
  the assertion fastest?");
* **histograms** — per-location hit counts broken down by shard
  (coverage: "which configs exercise this branch at all?");
* **divergence** — shards that hit the same source location at the same
  cycle with *different* frame values.  For replicated shards (same seed,
  same config) any divergence is a determinism bug; for seed sweeps it
  marks where behaviors split.
* **timeline divergence** — when shards streamed their compressed state
  history (``ShardSpec.timeline_cycles``), replicated seeds whose final
  digests disagree are *localized*: the report names the first retained
  cycle and the first signal (or memory word) where the replicas split,
  via :func:`repro.sim.timeline.first_timeline_divergence`.

Hit records are the plain dicts of ``HitGroup.to_record``; frame values
are digested into a stable fingerprint so comparison never depends on
dict ordering.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..obs import merge_snapshots, to_prometheus
from ..obs import write_chrome_trace as _write_chrome_trace
from ..sim.timeline import decode_timeline_states, first_state_divergence
from .spec import ShardResult


def location_of(record: dict) -> str:
    """Stable location key for one hit record."""
    if "watch" in record:
        return f"<watch:{record['watch'].get('path')}>"
    return f"{record['filename']}:{record['line']}"


def frame_digest(record: dict) -> str:
    """A stable fingerprint of the values observed at one hit.

    Breakpoint hits digest every frame's flattened local/generator
    variables; watch hits digest the old/new pair.  Equal digests mean
    two shards observed identical state at that stop.
    """
    if "watch" in record:
        w = record["watch"]
        basis = ["watch", w.get("path"), w.get("old"), w.get("new")]
    else:
        basis = [
            [
                f.get("instance"),
                _flatten_vars(f.get("local", [])),
                _flatten_vars(f.get("generator", [])),
            ]
            for f in record.get("frames", [])
        ]
    blob = json.dumps(basis, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(blob.encode()).hexdigest()[:12]


def _flatten_vars(views: list, prefix: str = "") -> list:
    out = []
    for v in views:
        label = f"{prefix}.{v['name']}" if prefix else v["name"]
        if v.get("children"):
            out.extend(_flatten_vars(v["children"], label))
        else:
            out.append([label, v.get("value")])
    return sorted(out)


@dataclass(slots=True)
class FirstHit:
    """The earliest sighting of one breakpoint location in the sweep."""

    location: str
    time: int
    shard_id: int
    record: dict


@dataclass(slots=True)
class Divergence:
    """Shards disagreeing at one (location, cycle) stop."""

    location: str
    time: int
    groups: dict = field(default_factory=dict)   # digest -> sorted shard ids


@dataclass(slots=True)
class TimelineDivergence:
    """The first localized split between two replicated shards' streamed
    state histories: which cycle, and which signal or memory word."""

    seed: int
    shard_a: int
    shard_b: int
    time: int
    what: str            # signal path / "mem[path][addr]" / raw index
    value_a: object
    value_b: object

    def describe(self) -> str:
        return (
            f"seed {self.seed}: shards {self.shard_a} vs {self.shard_b} "
            f"first diverge @ cycle {self.time}: {self.what} = "
            f"{self.value_a} vs {self.value_b}"
        )


class ShardReport:
    """The aggregated outcome of one sweep.

    ``signal_names`` / ``mem_names`` (index -> hierarchical path, as laid
    out by the coordinator's compiled design) let timeline divergences
    print signal paths instead of raw value-table indices; the session
    passes them automatically.
    """

    def __init__(
        self,
        results: list[ShardResult],
        signal_names: list[str] | None = None,
        mem_names: list[str] | None = None,
    ):
        self.results = sorted(results, key=lambda r: r.shard_id)
        self.signal_names = signal_names
        self.mem_names = mem_names
        self._timeline_divs: list[TimelineDivergence] | None = None
        #: Coordinator-side ``Obs.to_wire()`` dump (attempt/retry counts,
        #: heartbeat gap histogram, sweep + per-attempt spans), attached
        #: by the session after a run.  None for obs-off sweeps.
        self.coordinator_obs: dict | None = None

    # -- basic rollups -----------------------------------------------------

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def errors(self) -> list[ShardResult]:
        return [r for r in self.results if not r.ok]

    @property
    def retried(self) -> list[ShardResult]:
        """Shards that needed more than one attempt (supervision layer)."""
        return [r for r in self.results if r.attempts > 1]

    @property
    def total_attempts(self) -> int:
        """Attempts consumed across the sweep (== shards when healthy)."""
        return sum(r.attempts for r in self.results)

    def failed_shards(self) -> list[tuple[int, int, str]]:
        """``(shard_id, attempts, error)`` for every terminally failed
        shard — the partial-sweep accounting a degraded report carries
        instead of raising."""
        return [(r.shard_id, r.attempts, r.error) for r in self.errors]

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.results)

    @property
    def total_hits(self) -> int:
        return sum(len(r.hits) for r in self.results)

    @property
    def wall_time_s(self) -> float:
        """Coordinator wall time when set by the session; else the max
        per-shard wall time (the critical path)."""
        if getattr(self, "_wall_time_s", None) is not None:
            return self._wall_time_s
        return max((r.wall_time_s for r in self.results), default=0.0)

    @wall_time_s.setter
    def wall_time_s(self, value: float) -> None:
        self._wall_time_s = value

    def iter_hits(self):
        """Yield ``(shard_id, record)`` across every shard, shard order."""
        for r in self.results:
            for rec in r.hits:
                yield r.shard_id, rec

    # -- cross-shard views -------------------------------------------------

    def first_hits(self) -> dict[str, FirstHit]:
        """Per location: the minimal (time, shard_id) hit in the sweep."""
        best: dict[str, FirstHit] = {}
        for shard_id, rec in self.iter_hits():
            loc = location_of(rec)
            cur = best.get(loc)
            if cur is None or (rec["time"], shard_id) < (cur.time, cur.shard_id):
                best[loc] = FirstHit(loc, rec["time"], shard_id, rec)
        return best

    def histogram(self) -> dict[str, dict[int, int]]:
        """Per location: hit count per shard."""
        out: dict[str, dict[int, int]] = {}
        for shard_id, rec in self.iter_hits():
            per_shard = out.setdefault(location_of(rec), {})
            per_shard[shard_id] = per_shard.get(shard_id, 0) + 1
        return out

    def state_groups(self) -> dict[int, dict[str, list[int]]]:
        """Per seed: final value-table digest -> shard ids.

        Shard workers fingerprint their final state by hashing the raw
        value-store buffer (``memoryview``/``tobytes``, no per-signal
        boxing) plus memories.  Shards replicating one seed must land in
        one digest group; more than one group for a seed is a determinism
        bug caught without shipping any state across the wire.
        """
        out: dict[int, dict[str, list[int]]] = {}
        for r in self.results:
            if not r.ok or r.state_digest is None:
                continue
            out.setdefault(r.seed, {}).setdefault(r.state_digest, []).append(
                r.shard_id
            )
        return out

    def state_divergences(self) -> list[Divergence]:
        """Replicated seeds whose shards finished in different states."""
        return [
            Divergence(f"<state:seed {seed}>", -1,
                       {d: sorted(s) for d, s in sorted(groups.items())})
            for seed, groups in sorted(self.state_groups().items())
            if len(groups) > 1
        ]

    def _describe_divergence_site(self, div: dict) -> str:
        """Map a raw :func:`first_timeline_divergence` site to a name."""
        if div["kind"] == "mem":
            mi, addr = div["index"]
            name = (
                self.mem_names[mi]
                if self.mem_names is not None and mi < len(self.mem_names)
                else f"mem[{mi}]"
            )
            return f"{name}[{addr}]"
        idx = div["index"]
        if self.signal_names is not None and idx < len(self.signal_names):
            return self.signal_names[idx]
        return f"signal[{idx}]"

    def timeline_divergences(self) -> list[TimelineDivergence]:
        """Localize replica divergence from streamed state history.

        For every seed run by at least two shards that shipped a
        timeline (``ShardSpec.timeline_cycles > 0``), compare each
        replica's retained window against the seed's first shard, cycle
        by cycle, and report the first cycle + signal/memory word where
        they split.  Empty when replicas agree (the healthy case) — and
        the *stateful* upgrade of :meth:`state_divergences`, which can
        only say that final digests differ.

        Decoding streamed windows is the expensive aggregation step, so
        the outcome is computed once and cached (``summary`` and
        ``to_json`` both need it); results are treated as immutable once
        this has been called.
        """
        if self._timeline_divs is not None:
            return self._timeline_divs
        by_seed: dict[int, list[ShardResult]] = {}
        for r in self.results:
            if r.ok and r.timeline is not None:
                by_seed.setdefault(r.seed, []).append(r)
        # Decoding a wire replays every retained delta; do it once per
        # shard, not once per comparison pair.
        decoded: dict[int, dict] = {}

        def states(r: ShardResult) -> dict:
            if r.shard_id not in decoded:
                decoded[r.shard_id] = decode_timeline_states(r.timeline)
            return decoded[r.shard_id]

        out: list[TimelineDivergence] = []
        for seed, rs in sorted(by_seed.items()):
            if len(rs) < 2:
                continue
            base = rs[0]
            for other in rs[1:]:
                div = first_state_divergence(states(base), states(other))
                if div is None:
                    continue
                out.append(
                    TimelineDivergence(
                        seed=seed,
                        shard_a=base.shard_id,
                        shard_b=other.shard_id,
                        time=div["time"],
                        what=self._describe_divergence_site(div),
                        value_a=div["a"],
                        value_b=div["b"],
                    )
                )
        self._timeline_divs = out
        return out

    def divergences(self) -> list[Divergence]:
        """Stops where shards saw different state at the same cycle.

        Only (location, time) pairs reached by at least two shards are
        comparable; a pair whose frame digests differ across shards is a
        divergence.  Expected in a seed sweep (different stimulus);
        incriminating when shards replicate one seed.
        """
        seen: dict[tuple[str, int], dict[str, set[int]]] = {}
        for shard_id, rec in self.iter_hits():
            key = (location_of(rec), rec["time"])
            seen.setdefault(key, {}).setdefault(
                frame_digest(rec), set()
            ).add(shard_id)
        out = []
        for (loc, t), groups in sorted(seen.items()):
            shards = set().union(*groups.values())
            if len(groups) > 1 and len(shards) > 1:
                out.append(
                    Divergence(
                        loc, t,
                        {d: sorted(s) for d, s in sorted(groups.items())},
                    )
                )
        return out

    # -- observability rollup (repro.obs) ----------------------------------

    @property
    def has_obs(self) -> bool:
        """True when any side of the sweep collected telemetry."""
        return self.coordinator_obs is not None or any(
            r.obs is not None for r in self.results
        )

    def merged_metrics(self) -> dict:
        """One metrics snapshot for the whole sweep.

        Per-shard snapshots keep their ``shard=<id>`` label so series
        stay distinct; coordinator-side supervision metrics carry no
        shard label.  Empty (no series) for obs-off sweeps.
        """
        snaps = [
            r.obs["metrics"]
            for r in self.results
            if r.obs is not None and r.obs.get("metrics")
        ]
        if self.coordinator_obs is not None and self.coordinator_obs.get("metrics"):
            snaps.append(self.coordinator_obs["metrics"])
        return merge_snapshots(snaps)

    def prometheus(self) -> str:
        """The merged snapshot in Prometheus text exposition format."""
        return to_prometheus(self.merged_metrics())

    def trace_spans(self) -> list[dict]:
        """Every span from the sweep: coordinator first, then shards.

        Worker spans were recorded in the forked processes (distinct
        pids, ``shard <id>`` process names) and shipped home inside the
        results, so one Chrome trace shows every process on its own
        track of a shared wall-clock timeline.
        """
        spans: list[dict] = []
        if self.coordinator_obs is not None:
            spans.extend(self.coordinator_obs.get("spans", ()))
        for r in self.results:
            if r.obs is not None:
                spans.extend(r.obs.get("spans", ()))
        return spans

    def write_chrome_trace(self, path) -> None:
        """Write the merged sweep trace as Chrome trace-event JSON
        (loadable in Perfetto / chrome://tracing)."""
        _write_chrome_trace(path, self.trace_spans())

    def _sum_metric(self, merged: dict, name: str) -> float | None:
        """Sum one counter/gauge across every label set; None if absent."""
        total, found = 0.0, False
        for m in merged["metrics"]:
            if m["name"] == name and m["type"] in ("counter", "gauge"):
                total += m["value"]
                found = True
        return total if found else None

    def _sum_histogram(self, merged: dict, name: str) -> tuple[int, float] | None:
        """(count, sum) of one histogram across every label set."""
        count, total, found = 0, 0.0, False
        for m in merged["metrics"]:
            if m["name"] == name and m["type"] == "histogram":
                count += m["count"]
                total += m["sum"]
                found = True
        return (count, total) if found else None

    def _obs_summary_lines(self) -> list[str]:
        merged = self.merged_metrics()
        if not merged["metrics"]:
            return []
        lines = ["observability:"]
        attempts = self._sum_metric(merged, "shard_attempts_total")
        if attempts is not None:
            retries = self._sum_metric(merged, "shard_retries_total") or 0
            terms = self._sum_metric(merged, "shard_terminations_total") or 0
            lines.append(
                f"  supervision: {attempts:.0f} attempt(s), "
                f"{retries:.0f} retry(s), {terms:.0f} termination(s)"
            )
        hb = self._sum_histogram(merged, "shard_heartbeat_gap_seconds")
        if hb is not None and hb[0]:
            lines.append(
                f"  heartbeat gap: {hb[0]} sample(s), "
                f"mean {hb[1] / hb[0] * 1000:.1f}ms"
            )
        rpc = self._sum_metric(merged, "rpc_requests_total")
        if rpc is not None:
            rec = self._sum_metric(merged, "rpc_reconnects_total") or 0
            rep = self._sum_metric(merged, "rpc_replays_total") or 0
            lat = self._sum_histogram(merged, "rpc_request_seconds")
            mean = (
                f", mean {lat[1] / lat[0] * 1000:.2f}ms"
                if lat is not None and lat[0] else ""
            )
            lines.append(
                f"  rpc: {rpc:.0f} request(s), {rec:.0f} reconnect(s), "
                f"{rep:.0f} replay(s){mean}"
            )
        ticks = self._sum_metric(merged, "sim_ticks_total")
        if ticks is not None:
            hits = self._sum_metric(merged, "sim_cone_cache_hits_total") or 0
            misses = self._sum_metric(merged, "sim_cone_cache_misses_total") or 0
            fb = self._sum_metric(merged, "sim_cone_fallback_total") or 0
            lines.append(
                f"  sim: {ticks:.0f} tick(s), cone cache "
                f"{hits:.0f} hit(s) / {misses:.0f} compile(s) / "
                f"{fb:.0f} fallback(s)"
            )
        return lines

    # -- rendering ---------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "shards": [r.to_wire() for r in self.results],
            "total_cycles": self.total_cycles,
            "total_hits": self.total_hits,
            "wall_time_s": round(self.wall_time_s, 6),
            "first_hits": {
                loc: {"time": fh.time, "shard": fh.shard_id}
                for loc, fh in sorted(self.first_hits().items())
            },
            "histogram": {
                loc: {str(s): n for s, n in sorted(counts.items())}
                for loc, counts in sorted(self.histogram().items())
            },
            "divergences": [
                {"location": d.location, "time": d.time, "groups": d.groups}
                for d in self.divergences()
            ],
            "state_digests": {
                str(r.shard_id): r.state_digest
                for r in self.results
                if r.state_digest is not None
            },
            "state_divergences": [
                {"location": d.location, "groups": d.groups}
                for d in self.state_divergences()
            ],
            "timeline_divergences": [
                {
                    "seed": d.seed,
                    "shards": [d.shard_a, d.shard_b],
                    "time": d.time,
                    "what": d.what,
                    "values": [d.value_a, d.value_b],
                }
                for d in self.timeline_divergences()
            ],
            "shard_timings": {
                str(r.shard_id): {
                    "wall_time_s": round(r.wall_time_s, 6),
                    "attempts": r.attempts,
                }
                for r in self.results
            },
            "obs": self.merged_metrics() if self.has_obs else None,
            "total_attempts": self.total_attempts,
            "retried": [r.shard_id for r in self.retried],
            "failures": {
                str(r.shard_id): r.failures
                for r in self.results
                if r.failures
            },
            "failed": [
                {"shard": sid, "attempts": n, "error": err}
                for sid, n, err in self.failed_shards()
            ],
            "ok": self.ok,
        }

    def summary(self) -> str:
        """Human-readable sweep report (the CLI/console output)."""
        lines = []
        wall = self.wall_time_s
        rate = self.total_cycles / wall if wall > 0 else 0.0
        lines.append(
            f"sweep: {len(self.results)} shard(s), "
            f"{self.total_cycles} cycles, {self.total_hits} hit(s), "
            f"{wall:.2f}s ({rate:,.0f} cycles/s aggregate)"
        )
        for r in self.results:
            status = f"error: {r.error}" if not r.ok else (
                f"{len(r.hits)} hit(s)"
                + (f", exit {r.exit_code}" if r.exit_code is not None else "")
            )
            status += f" [{r.wall_time_s:.2f}s, {r.attempts} attempt(s)]"
            lines.append(
                f"  shard {r.shard_id} (seed {r.seed}): "
                f"{r.cycles} cycles, {status}"
            )
        lines.extend(self._obs_summary_lines())
        recoveries = [r for r in self.results if r.failures]
        if recoveries:
            lines.append("fault recovery:")
            for r in recoveries:
                for f in r.failures:
                    lines.append(
                        f"  shard {r.shard_id} attempt {f['attempt']} "
                        f"{f['class']}: {f['message']}"
                    )
                if r.ok:
                    lines.append(
                        f"  shard {r.shard_id} recovered on attempt "
                        f"{r.attempts}"
                    )
                else:
                    lines.append(
                        f"  shard {r.shard_id} FAILED after "
                        f"{r.attempts} attempt(s)"
                    )
        first = self.first_hits()
        if first:
            lines.append("first hits:")
            for loc, fh in sorted(first.items(), key=lambda kv: (kv[1].time, kv[0])):
                short = loc.rsplit("/", 1)[-1]
                lines.append(
                    f"  {short} @ cycle {fh.time} (shard {fh.shard_id})"
                )
        hist = self.histogram()
        if hist:
            lines.append("hit histogram (per shard):")
            for loc, counts in sorted(hist.items()):
                short = loc.rsplit("/", 1)[-1]
                cells = " ".join(
                    f"s{s}:{n}" for s, n in sorted(counts.items())
                )
                lines.append(f"  {short}: {cells}")
        div = self.divergences()
        if div:
            lines.append(f"divergence at {len(div)} stop(s):")
            for d in div[:10]:
                short = d.location.rsplit("/", 1)[-1]
                groups = "; ".join(
                    f"shards {','.join(map(str, s))}" for s in d.groups.values()
                )
                lines.append(f"  {short} @ cycle {d.time}: {groups}")
            if len(div) > 10:
                lines.append(f"  ... {len(div) - 10} more")
        state_div = self.state_divergences()
        if state_div:
            lines.append(
                f"REPLICA STATE MISMATCH at {len(state_div)} seed(s):"
            )
            for d in state_div:
                groups = "; ".join(
                    f"shards {','.join(map(str, s))}" for s in d.groups.values()
                )
                lines.append(f"  {d.location}: {groups}")
        tl_div = self.timeline_divergences()
        if tl_div:
            lines.append(
                f"timeline divergence localized at {len(tl_div)} pair(s):"
            )
            for d in tl_div:
                lines.append(f"  {d.describe()}")
        if not div and not state_div and not tl_div:
            lines.append("no divergence between shards")
        return "\n".join(lines)
