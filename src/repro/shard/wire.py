"""The shard event wire protocol: JSON lines, one event per line.

Workers stream events to the coordinator over a pipe using the same
framing the symbol table RPC uses over TCP (``symtable/rpc.py``): every
message is one JSON object terminated by ``\\n``, and symbol-table record
types tunnel through the same ``__type__`` tagging, so a tool that can
read one wire can read the other.

Event shapes (all carry ``v`` — the protocol version — and ``shard``)::

    {"event": "hit",       "shard": N, "record": {...}}       one hit record
    {"event": "progress",  "shard": N, "done": C, "total": T, "hits": H}
    {"event": "heartbeat", "shard": N, "done": C}             liveness tick
    {"event": "warning",   "shard": N, "message": "..."}
    {"event": "done",      "shard": N, "result": {...}}       ShardResult
    {"event": "error",     "shard": N, "message": "...",
                           "transient": bool}                 worker failed
    {"event": "stats",     "shard": N, "obs": {...}}          obs snapshot

``error.transient`` distinguishes infrastructure trouble the worker
observed itself (its symbol-table RPC client gave up: retry-worthy,
failure class ``rpc``) from a deterministic spec failure (class
``error``, never retried).  Absent means false, so the protocol version
is unchanged.

``heartbeat`` is the supervision layer's liveness signal: workers emit
it from the run-loop progress hook at a finer cadence than ``progress``
(see ``worker.py``), and the coordinator treats *any* event as proof of
life — a worker silent past the deadline policy's heartbeat timeout is
declared hung and terminated.  Older consumers can ignore the event;
the protocol version is unchanged.

When the spec asked for timeline streaming (``timeline_cycles > 0``) the
``done`` result additionally carries ``result["timeline"]`` — the
worker's compressed state history (``Timeline.to_wire``: keyframes +
run-length-encoded delta runs, plain JSON ints) — which the aggregator
feeds to :func:`repro.sim.timeline.first_timeline_divergence` for
stateful divergence localization.  Absent/None for older producers, so
the protocol version is unchanged.

A *world group* attempt (``WorldGroupSpec``: M scenarios packed into one
worker, vectorized many-worlds when eligible) settles with a single
``done`` whose result is ``{"shard_id": N, "group": [member result
wires...]}`` — see :func:`group_done_event`.

``stats`` carries a worker's final ``repro.obs`` dump (metrics snapshot
plus trace spans, ``Obs.to_wire``) just before ``done``; the same dump
also rides ``done.result["obs"]`` so the aggregated ``ShardReport`` works
for inline runs that never touch the wire.  Workers only emit it when an
obs mode is armed, and older consumers can ignore the event — the
protocol version is unchanged.
"""

from __future__ import annotations

import json

from ..symtable.rpc import _decode, _encode
from .spec import ShardResult

PROTOCOL_VERSION = 1

_EVENTS = frozenset(
    {"hit", "progress", "heartbeat", "warning", "done", "error", "stats"}
)


class WireError(Exception):
    """Raised on an undecodable or malformed shard event."""


def encode_line(obj: dict) -> bytes:
    """One event -> one JSON line (record types tagged for decode)."""
    return json.dumps(_encode_deep(obj)).encode() + b"\n"


def decode_line(data: bytes | str) -> dict:
    """One JSON line -> one validated event dict."""
    try:
        obj = json.loads(data)
    except ValueError as exc:
        raise WireError(f"undecodable shard event: {exc}") from exc
    if not isinstance(obj, dict) or obj.get("event") not in _EVENTS:
        raise WireError(f"malformed shard event: {obj!r}")
    return _decode_deep(obj)


def _encode_deep(obj):
    """Recursive variant of the symtable encoder: events nest dicts."""
    if isinstance(obj, dict):
        return {k: _encode_deep(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode_deep(x) for x in obj]
    return _encode(obj)


def _decode_deep(obj):
    if isinstance(obj, dict) and "__type__" not in obj:
        return {k: _decode_deep(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode_deep(x) for x in obj]
    return _decode(obj)


# Public names for the recursive codec: the debug hub's newline-JSON
# transport (repro.hub.server) frames its messages with the same
# __type__-tagged encoding, so hub and shard wires stay mutually readable.
encode_deep = _encode_deep
decode_deep = _decode_deep


def _event(kind: str, shard_id: int, **fields) -> dict:
    ev = {"event": kind, "v": PROTOCOL_VERSION, "shard": shard_id}
    ev.update(fields)
    return ev


def hit_event(shard_id: int, record: dict) -> dict:
    return _event("hit", shard_id, record=record)


def progress_event(shard_id: int, done: int, total: int, hits: int) -> dict:
    return _event("progress", shard_id, done=done, total=total, hits=hits)


def heartbeat_event(shard_id: int, done: int) -> dict:
    return _event("heartbeat", shard_id, done=done)


def warning_event(shard_id: int, message: str) -> dict:
    return _event("warning", shard_id, message=message)


def done_event(result: ShardResult) -> dict:
    return _event("done", result.shard_id, result=result.to_wire())


def group_done_event(shard_id: int, results: list[ShardResult]) -> dict:
    """A world group's single completion event.

    A group occupies one worker attempt, so (like any attempt) it settles
    with exactly one ``done`` line — its ``result`` carries a ``group``
    list of the member ``ShardResult`` wires instead of one flat result.
    Older consumers treat it as an unknown result shape on a known event;
    the protocol version is unchanged.
    """
    return _event(
        "done",
        shard_id,
        result={
            "shard_id": shard_id,
            "group": [r.to_wire() for r in results],
        },
    )


def error_event(shard_id: int, message: str, transient: bool = False) -> dict:
    return _event("error", shard_id, message=message, transient=transient)


def stats_event(shard_id: int, obs_wire: dict) -> dict:
    return _event("stats", shard_id, obs=obs_wire)
