"""Shard workers: one ``Simulator`` + ``Runtime`` per shard.

:func:`run_shard` is the whole life of a shard and runs anywhere — inline
in the coordinator process (``workers=0``, and how the determinism
property tests pin shard ≡ standalone), or inside a forked worker process
(:func:`worker_entry`), where the symbol table arrives over RPC and every
hit/progress event streams back to the coordinator as a JSON line.

Stimulus is owned by the spec contract (see ``spec.py``): sorted-name
random pokes from ``random.Random(seed)``, overrides held constant,
reset asserted for ``reset_cycles`` first.
"""

from __future__ import annotations

import contextlib
import random
import time

from ..core.runtime import HitRecorder, Runtime
from ..hub.api import SessionOptions
from ..obs import make_obs
from ..sim.engine import Simulator
from ..sim.manyworlds import ManyWorldsSimulator, make_sweep_stimulus
from ..sim.store import numpy_available
from ..symtable.rpc import RPCSymbolTable
from .spec import ShardResult, ShardSpec, WorldGroupSpec
from .wire import (
    done_event,
    encode_line,
    error_event,
    group_done_event,
    heartbeat_event,
    hit_event,
    progress_event,
    stats_event,
    warning_event,
)


def stimulus_inputs(design, spec: ShardSpec) -> list[tuple[str, int]]:
    """The ``(name, width)`` pairs randomized each cycle: every top-level
    input except the clock, the reset, and the spec's overrides, in
    sorted-name order (the determinism contract)."""
    skip = {
        design.signals[design.clock_index].name,
        design.signals[design.reset_index].name,
    }
    skip.update(spec.overrides)
    return [
        (name, design.signals[idx].width)
        for name, idx in sorted(design.top_inputs.items())
        if name not in skip
    ]


def make_stimulus(sim: Simulator, spec: ShardSpec):
    """Build the per-cycle stimulus callback for ``run_cycles``."""
    rng = random.Random(spec.seed)
    inputs = stimulus_inputs(sim.design, spec)

    def stimulus(s, _cycle: int) -> None:
        for name, width in inputs:
            s.poke(name, rng.getrandbits(width))

    return stimulus


def run_shard(
    circuit,
    symtable,
    spec: ShardSpec,
    emit=None,
    compiled=None,
    fast: bool = True,
    on_cycle=None,
    obs=None,
) -> ShardResult:
    """Run one shard to completion and return its result.

    Args:
        circuit: the coordinator's elaborated Low-form circuit.
        symtable: any ``SymbolTableInterface`` (native inline, RPC in a
            forked worker).
        spec: what to run (seed, overrides, length, break/watchpoints).
        emit: optional ``emit(event_dict)`` sink for streaming hit,
            progress, and heartbeat events while the shard runs.
        compiled: optional pre-compiled design shared from the coordinator
            (forked workers inherit it and skip recompilation).
        on_cycle: optional ``on_cycle(cycle)`` hook invoked before each
            stimulus cycle — the fault-injection seam (``repro.faults``).
            None (the default) adds no per-cycle overhead.
        obs: observability depth (``repro.obs``): an ``Obs`` to report
            into, a mode string, or None (``configure``/``$REPRO_OBS``).
            A fresh registry/tracer is built per shard with a
            ``shard=<id>`` label and ``shard <id>`` process name, so
            per-shard series stay distinct through wire transit and the
            merged Chrome trace shows one track per shard.  When armed,
            the final dump rides ``ShardResult.obs`` (and, with ``emit``,
            a ``stats`` wire event just before ``done``).
    """
    t0 = time.perf_counter()
    obs = make_obs(
        obs,
        proc=f"shard {spec.shard_id}",
        labels={"shard": str(spec.shard_id)},
    )
    # With timeline streaming the shard retains its last N cycles of
    # state history (rle-compressed — store-native deltas collapse into
    # index runs) and ships the serialized window home with the result,
    # so the aggregator can localize replica divergence to the first
    # divergent cycle and signal, not just report a digest mismatch.
    with obs.span("shard.setup", shard=spec.shard_id):
        sim = Simulator(
            circuit,
            compiled=compiled,
            options=SessionOptions(
                fast=fast,
                snapshots=spec.timeline_cycles,
                snapshot_codec="rle" if spec.timeline_cycles else None,
                obs=obs,
            ),
        )
        on_record = None
        if emit is not None:
            on_record = lambda rec: emit(hit_event(spec.shard_id, rec))  # noqa: E731
        recorder = HitRecorder(on_record=on_record, limit=spec.hit_limit)
        runtime = Runtime(sim, symtable, on_hit=recorder)
        runtime.attach()
        for bp in spec.breakpoints:
            runtime.add_breakpoint(bp.filename, bp.line, bp.column, bp.condition)
        for wp in spec.watchpoints:
            runtime.add_watchpoint(wp.name, wp.instance, wp.condition)

        for name in spec.overrides:
            sim.poke(name, spec.overrides[name])
        if spec.reset_cycles:
            sim.reset(spec.reset_cycles)

    # Heartbeats ride the run-loop progress hook at a finer cadence than
    # progress events: the hook fires every `beat_every` cycles and always
    # emits a heartbeat (the supervision layer's liveness signal); the
    # coarser progress event fires on its own multiple.  `progress_each`
    # is snapped to a multiple of `beat_every` so no progress tick lands
    # between hook invocations.  An explicit spec.progress_every pins both
    # cadences, preserving the historical event stream exactly.
    on_progress = None
    beat_every = spec.progress_every or max(1, min(spec.cycles // 16, 2048))
    progress_each = spec.progress_every or beat_every * max(
        1, (spec.cycles // 4) // beat_every
    )
    if emit is not None:
        emit(heartbeat_event(spec.shard_id, 0))  # armed: setup finished

        def on_progress(_s, done: int) -> None:
            emit(heartbeat_event(spec.shard_id, done))
            if done % progress_each == 0:
                emit(
                    progress_event(
                        spec.shard_id, done, spec.cycles, len(recorder)
                    )
                )

    stimulus = make_stimulus(sim, spec)
    if on_cycle is not None:
        base_stimulus = stimulus

        def stimulus(s, cycle: int) -> None:
            on_cycle(cycle)
            base_stimulus(s, cycle)

    with obs.span("shard.run", shard=spec.shard_id, seed=spec.seed):
        ran = sim.run_cycles(
            spec.cycles,
            stimulus=stimulus,
            on_progress=on_progress,
            progress_every=beat_every,
        )
    if emit is not None:
        for message in runtime.warnings:
            emit(warning_event(spec.shard_id, message))
    obs_wire = None
    if obs.metrics is not None:
        wall = time.perf_counter() - t0
        m = obs.metrics
        m.counter("shard_cycles_total", "Stimulus cycles run").set_total(ran)
        m.gauge(
            "shard_cycles_per_second", "Shard throughput over its wall time"
        ).set(ran / wall if wall > 0 else 0.0)
        m.counter("shard_hits_total", "Breakpoint/watchpoint hits").set_total(
            len(recorder)
        )
        obs_wire = obs.to_wire()
        if emit is not None:
            emit(stats_event(spec.shard_id, obs_wire))
    return ShardResult(
        shard_id=spec.shard_id,
        seed=spec.seed,
        cycles=ran,
        hits=recorder.records,
        warnings=list(runtime.warnings),
        exit_code=sim.exit_code,
        wall_time_s=time.perf_counter() - t0,
        # Raw value-table fingerprint (store buffer + memories): equal
        # digests mean bit-identical final state — the aggregator's
        # replicated-shard determinism check, and what pins the forked
        # path against an inline or standalone run of the same seed.
        state_digest=sim.state_digest(),
        timeline=(
            sim.timeline.to_wire() if sim.timeline is not None else None
        ),
        obs=obs_wire,
    )


def run_world_group(
    circuit,
    symtable,
    group: WorldGroupSpec,
    emit=None,
    compiled=None,
    fast: bool = True,
    obs=None,
) -> list[ShardResult]:
    """Run a :class:`WorldGroupSpec`'s members together in one process.

    When the group is *vector-eligible* — numpy importable, more than one
    member, and no member arms breakpoints, watchpoints, a hit limit, or
    timeline streaming — all members advance in lockstep as scenario
    worlds of one :class:`~repro.sim.manyworlds.ManyWorldsSimulator`
    (per-world seeds/overrides honor the spec stimulus contract exactly).
    Otherwise members run sequentially through :func:`run_shard` in this
    same process.  Either way every member gets its own
    :class:`ShardResult` whose ``state_digest``, ``exit_code``, and
    cycle count are bit-identical to running it as a standalone shard.

    ``obs`` is a mode (string/None), not a built ``Obs``: the sequential
    path hands it to each member's :func:`run_shard` so per-shard
    registries stay distinct, while the vector path builds one
    group-level ``Obs`` (``worlds <id>`` process, worlds/sec gauges from
    the simulator's collector) and ships it on the first member's result.
    """
    eligible = (
        numpy_available()
        and group.worlds > 1
        and not any(
            m.breakpoints
            or m.watchpoints
            or m.hit_limit is not None
            or m.timeline_cycles
            for m in group.members
        )
    )
    if not eligible:
        return [
            run_shard(
                circuit, symtable, m, emit=emit, compiled=compiled,
                fast=fast, obs=obs,
            )
            for m in group.members
        ]

    t0 = time.perf_counter()
    first = group.members[0]
    gid = group.shard_id
    obs = make_obs(obs, proc=f"worlds {gid}", labels={"shard": str(gid)})
    with obs.span("worlds.setup", shard=gid, worlds=group.worlds):
        sim = ManyWorldsSimulator(
            circuit,
            group.worlds,
            compiled=compiled,
            options=SessionOptions(fast=fast, obs=obs),
        )
        for name in sorted(first.overrides):
            sim.poke_worlds(
                name, [m.overrides[name] for m in group.members]
            )
        if first.reset_cycles:
            sim.reset(first.reset_cycles)

    beat_every = first.progress_every or max(1, min(first.cycles // 16, 2048))
    on_progress = None
    if emit is not None:
        emit(heartbeat_event(gid, 0))  # armed: setup finished

        def on_progress(_s, done: int) -> None:
            emit(heartbeat_event(gid, done))

    stimulus = make_sweep_stimulus(
        sim, [m.seed for m in group.members], overrides=first.overrides
    )
    with obs.span("worlds.run", shard=gid, worlds=group.worlds):
        ran = sim.run_cycles(
            first.cycles,
            stimulus=stimulus,
            on_progress=on_progress,
            progress_every=beat_every,
        )
    wall = time.perf_counter() - t0
    obs_wire = None
    if obs.metrics is not None:
        obs_wire = obs.to_wire()
        if emit is not None:
            emit(stats_event(gid, obs_wire))
    exit_codes = sim.exit_codes
    finish_ticks = sim.finish_ticks
    results = []
    for k, m in enumerate(group.members):
        # A finished world ran fewer stimulus cycles than the lockstep
        # loop: its Stop fired at absolute tick `ft`, i.e. stimulus cycle
        # ft - reset_cycles, and the scalar run loop breaks *before* the
        # next cycle — so it counts ft + 1 - reset_cycles cycles (clamped:
        # a Stop during reset means zero stimulus cycles ran).
        ft = finish_ticks[k]
        ran_k = (
            min(ran, max(0, ft + 1 - first.reset_cycles))
            if ft is not None
            else ran
        )
        results.append(
            ShardResult(
                shard_id=m.shard_id,
                seed=m.seed,
                cycles=ran_k,
                exit_code=exit_codes[k],
                # One lockstep run served every member; amortize its wall
                # time so summing member walls recovers the group's.
                wall_time_s=wall / group.worlds,
                state_digest=sim.state_digest(k),
                obs=obs_wire if k == 0 else None,
            )
        )
    return results


def worker_entry(
    circuit, compiled, spec_wire: dict, host: str, port: int, conn,
    fault=None, obs_mode: str | None = None,
) -> None:
    """Forked worker process main: run one shard, stream JSON-line events
    through ``conn`` (a write-only ``multiprocessing`` connection), finish
    with a ``done`` (or ``error``) event, and close the pipe.

    ``fault`` (a :class:`repro.faults.ShardFault`, or None) arms this
    attempt's injected fault: kill/hang fire from the per-cycle hook,
    wire corruption garbles every line emitted from the fault cycle on —
    including the final ``done`` line, so the coordinator classifies the
    attempt as corrupt instead of silently accepting a damaged result.

    ``obs_mode`` arms observability for this attempt (the coordinator
    passes its own resolved mode so ``--obs``/``$REPRO_OBS`` on the
    coordinator reaches every worker).  The ``Obs`` is built *here*,
    after the fork, so its pid and span buffer are genuinely this
    worker's — and shared by the RPC client and the shard run.
    """
    from ..faults import FaultInjector, corrupt_line

    injector = FaultInjector(fault) if fault is not None else None

    def emit(event: dict) -> None:
        data = encode_line(event)
        if injector is not None and injector.corrupting:
            data = corrupt_line(data)
        conn.send_bytes(data)

    try:
        if "worlds" in spec_wire:
            # A packed world group: M member specs, one attempt, one done
            # event carrying every member result.  The faults layer's
            # per-cycle hook has no lockstep seam, so injected faults stay
            # a plain-shard (chaos-test) feature.
            group = WorldGroupSpec.from_wire(spec_wire)
            with RPCSymbolTable(host, port) as table:
                results = run_world_group(
                    circuit, table, group, emit=emit, compiled=compiled,
                    obs=obs_mode,
                )
            emit(group_done_event(group.shard_id, results))
            return
        spec = ShardSpec.from_wire(spec_wire)
        obs = make_obs(
            obs_mode,
            proc=f"shard {spec.shard_id}",
            labels={"shard": str(spec.shard_id)},
        )
        with RPCSymbolTable(host, port, obs=obs) as table:
            result = run_shard(
                circuit, table, spec, emit=emit, compiled=compiled,
                on_cycle=injector.on_cycle if injector is not None else None,
                obs=obs,
            )
        emit(done_event(result))
    except Exception as exc:  # noqa: BLE001 - process boundary
        with contextlib.suppress(OSError):
            # The spec itself may be what failed to decode: fall back to
            # the raw wire dict for the shard id so the coordinator still
            # gets the real error instead of a bare pipe EOF.  A
            # ConnectionError means the RPC transport gave out, not that
            # the spec is bad: flag it transient so the supervisor
            # retries (failure class "rpc") instead of settling terminal.
            shard_id = spec_wire.get("shard_id", -1)
            emit(error_event(
                shard_id, f"{type(exc).__name__}: {exc}",
                transient=isinstance(exc, ConnectionError),
            ))
    finally:
        conn.close()
