"""Shard specifications and per-shard results.

A :class:`ShardSpec` is everything one worker needs to run an independent
simulation of the coordinator's design: a stimulus seed, constant input
overrides (the "configuration" axis of a sweep), a run length, and the
breakpoint/watchpoint set to arm.  Specs and results both round-trip
through plain JSON dicts (``to_wire``/``from_wire``) so they travel the
same JSON-lines framing the symbol table RPC uses.

Stimulus is deterministic per seed: every cycle, each top-level input that
is not the clock, the reset, or an override is poked with
``Random(seed).getrandbits(width)``, inputs visited in sorted-name order.
That contract is what makes a shard run reproducible standalone — the
property tests pin shard output against a hand-written loop using nothing
but this paragraph.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ShardError(Exception):
    """Raised on invalid shard specs or a failed shard session."""


@dataclass(frozen=True, slots=True)
class BreakpointSpec:
    """One breakpoint to arm in a worker: a source location + condition."""

    filename: str
    line: int
    column: int | None = None
    condition: str | None = None

    def to_wire(self) -> dict:
        return {
            "filename": self.filename,
            "line": self.line,
            "column": self.column,
            "condition": self.condition,
        }

    @classmethod
    def from_wire(cls, d: dict) -> BreakpointSpec:
        return cls(
            filename=d["filename"],
            line=d["line"],
            column=d.get("column"),
            condition=d.get("condition"),
        )


@dataclass(frozen=True, slots=True)
class WatchSpec:
    """One watchpoint to arm in a worker."""

    name: str
    instance: str | None = None
    condition: str | None = None

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "instance": self.instance,
            "condition": self.condition,
        }

    @classmethod
    def from_wire(cls, d: dict) -> WatchSpec:
        return cls(
            name=d["name"],
            instance=d.get("instance"),
            condition=d.get("condition"),
        )


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One shard of a sweep: what a single worker process runs."""

    shard_id: int
    seed: int
    cycles: int
    overrides: dict = field(default_factory=dict)   # input name -> held value
    breakpoints: tuple = ()                          # BreakpointSpec...
    watchpoints: tuple = ()                          # WatchSpec...
    reset_cycles: int = 1
    progress_every: int = 0                          # 0: coordinator default
    hit_limit: int | None = None                     # detach after N hits
    # Retain the last N cycles of compressed state history in the worker
    # and ship the serialized timeline home with the result: the
    # aggregator can then localize replica divergence to the first
    # divergent cycle and signal instead of a bare digest mismatch.
    # 0 disables (the default: history costs memory and wire bytes).
    timeline_cycles: int = 0

    def __post_init__(self):
        if self.cycles < 0:
            raise ShardError(f"shard {self.shard_id}: negative cycle count")
        if self.reset_cycles < 0:
            raise ShardError(f"shard {self.shard_id}: negative reset length")
        if self.timeline_cycles < 0:
            raise ShardError(f"shard {self.shard_id}: negative timeline length")

    def to_wire(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "seed": self.seed,
            "cycles": self.cycles,
            "overrides": dict(self.overrides),
            "breakpoints": [b.to_wire() for b in self.breakpoints],
            "watchpoints": [w.to_wire() for w in self.watchpoints],
            "reset_cycles": self.reset_cycles,
            "progress_every": self.progress_every,
            "hit_limit": self.hit_limit,
            "timeline_cycles": self.timeline_cycles,
        }

    @classmethod
    def from_wire(cls, d: dict) -> ShardSpec:
        return cls(
            shard_id=d["shard_id"],
            seed=d["seed"],
            cycles=d["cycles"],
            overrides=dict(d.get("overrides", {})),
            breakpoints=tuple(
                BreakpointSpec.from_wire(b) for b in d.get("breakpoints", [])
            ),
            watchpoints=tuple(
                WatchSpec.from_wire(w) for w in d.get("watchpoints", [])
            ),
            reset_cycles=d.get("reset_cycles", 1),
            progress_every=d.get("progress_every", 0),
            hit_limit=d.get("hit_limit"),
            timeline_cycles=d.get("timeline_cycles", 0),
        )


@dataclass(slots=True)
class ShardResult:
    """What one worker reports back when its shard completes.

    ``attempts``/``failures`` are the supervision layer's provenance:
    how many attempts this shard consumed, and one record per failed
    attempt (``{"attempt", "class", "message", "elapsed_s"}``, see
    ``supervise.failure_record``).  A successful first try is the common
    case: ``attempts == 1``, ``failures == []``.  ``error`` is set only
    when the shard failed *terminally* — a retried-then-successful shard
    is ``ok`` with a non-empty failure history.
    """

    shard_id: int
    seed: int
    cycles: int                         # cycles actually run
    hits: list = field(default_factory=list)       # HitGroup.to_record dicts
    warnings: list = field(default_factory=list)
    exit_code: int | None = None        # design Stop code, when one fired
    wall_time_s: float = 0.0
    error: str | None = None            # set when the shard terminally failed
    state_digest: str | None = None     # final value-table fingerprint
    timeline: dict | None = None        # serialized Timeline.to_wire()
    attempts: int = 1                   # attempts consumed (incl. fallback)
    failures: list = field(default_factory=list)   # per-failed-attempt records
    obs: dict | None = None             # repro.obs dump (Obs.to_wire())

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def retried(self) -> bool:
        """True when this shard needed more than one attempt."""
        return self.attempts > 1

    def to_wire(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "seed": self.seed,
            "cycles": self.cycles,
            "hits": self.hits,
            "warnings": self.warnings,
            "exit_code": self.exit_code,
            "wall_time_s": self.wall_time_s,
            "error": self.error,
            "state_digest": self.state_digest,
            "timeline": self.timeline,
            "attempts": self.attempts,
            "failures": self.failures,
            "obs": self.obs,
        }

    @classmethod
    def from_wire(cls, d: dict) -> ShardResult:
        return cls(
            shard_id=d["shard_id"],
            seed=d["seed"],
            cycles=d["cycles"],
            hits=list(d.get("hits", [])),
            warnings=list(d.get("warnings", [])),
            exit_code=d.get("exit_code"),
            wall_time_s=d.get("wall_time_s", 0.0),
            error=d.get("error"),
            state_digest=d.get("state_digest"),
            timeline=d.get("timeline"),
            attempts=d.get("attempts", 1),
            failures=list(d.get("failures", [])),
            obs=d.get("obs"),
        )


@dataclass(frozen=True, slots=True)
class WorldGroupSpec:
    """M shards packed into one worker as scenario *worlds*.

    A world group rides the pool exactly like a single :class:`ShardSpec`
    (one process, one attempt token, one done event) but runs its members
    together — vectorized in a
    :class:`~repro.sim.manyworlds.ManyWorldsSimulator` when eligible (no
    breakpoints/watchpoints/hit limits/timeline streaming and numpy
    present), member-by-member sequentially otherwise.  Either way each
    member still reports its own :class:`ShardResult`, digest-identical
    to running it as a standalone shard: processes × SIMD compose.
    """

    members: tuple = ()                              # ShardSpec...

    def __post_init__(self):
        if not self.members:
            raise ShardError("a world group needs at least one member")
        first = self.members[0]
        for m in self.members[1:]:
            if m.cycles != first.cycles:
                raise ShardError(
                    "world group members must share a cycle count"
                )
            if m.reset_cycles != first.reset_cycles:
                raise ShardError(
                    "world group members must share reset_cycles"
                )
            if set(m.overrides) != set(first.overrides):
                raise ShardError(
                    "world group members must override the same inputs"
                )

    # A group impersonates its first member wherever the pool machinery
    # needs one id/seed/cycle-count per job (tokens, deadlines, faults).
    @property
    def shard_id(self) -> int:
        return self.members[0].shard_id

    @property
    def seed(self) -> int:
        return self.members[0].seed

    @property
    def cycles(self) -> int:
        return self.members[0].cycles

    @property
    def worlds(self) -> int:
        return len(self.members)

    def to_wire(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "worlds": [m.to_wire() for m in self.members],
        }

    @classmethod
    def from_wire(cls, d: dict) -> WorldGroupSpec:
        return cls(
            members=tuple(ShardSpec.from_wire(m) for m in d["worlds"])
        )


def group_worlds(specs: list[ShardSpec], worlds_per_shard: int) -> list:
    """Chunk a flat sweep into :class:`WorldGroupSpec` jobs of up to
    ``worlds_per_shard`` members each (the last group takes the
    remainder); ``worlds_per_shard <= 1`` returns the specs unchanged."""
    if worlds_per_shard <= 1:
        return list(specs)
    return [
        WorldGroupSpec(members=tuple(specs[i : i + worlds_per_shard]))
        for i in range(0, len(specs), worlds_per_shard)
    ]


def make_sweep(
    shards: int,
    cycles: int,
    seed_base: int = 0,
    overrides: dict | None = None,
    breakpoints=(),
    watchpoints=(),
    reset_cycles: int = 1,
    hit_limit: int | None = None,
    timeline_cycles: int = 0,
) -> list[ShardSpec]:
    """Build the canonical seed sweep: ``shards`` specs with seeds
    ``seed_base .. seed_base+shards-1`` and otherwise identical config."""
    if shards < 1:
        raise ShardError("a sweep needs at least one shard")
    return [
        ShardSpec(
            shard_id=i,
            seed=seed_base + i,
            cycles=cycles,
            overrides=dict(overrides or {}),
            breakpoints=tuple(breakpoints),
            watchpoints=tuple(watchpoints),
            reset_cycles=reset_cycles,
            hit_limit=hit_limit,
            timeline_cycles=timeline_cycles,
        )
        for i in range(shards)
    ]
