"""repro.shard — a multi-process simulation farm with one debugging view.

The first service-shaped layer on top of the hgdb runtime: a coordinator
elaborates a design once and serves its symbol table over the paper's RPC
seam (Sec. 3.4); forked worker processes each run an independent
seed/config shard with their own ``Simulator`` + ``Runtime``; hits stream
back as JSON-lines events and aggregate into cross-shard reports
(first-hit-per-breakpoint, per-shard histograms, divergence detection).

Quickstart::

    import repro
    from repro.shard import ShardSession, BreakpointSpec

    design = repro.compile(MyModule())
    with ShardSession(design, workers=4) as session:
        report = session.sweep(
            shards=4, cycles=10_000,
            breakpoints=[BreakpointSpec("my_module.py", 42)],
        )
    print(report.summary())

See ``docs/sharding.md`` for the architecture and wire protocol.
"""

from .aggregate import (
    Divergence,
    FirstHit,
    ShardReport,
    TimelineDivergence,
    frame_digest,
    location_of,
)
from .coordinator import ShardSession, default_workers
from .spec import (
    BreakpointSpec,
    ShardError,
    ShardResult,
    ShardSpec,
    WatchSpec,
    WorldGroupSpec,
    group_worlds,
    make_sweep,
)
from .supervise import (
    DeadlinePolicy,
    RetryPolicy,
    as_deadline_policy,
    failure_record,
)
from .wire import (
    PROTOCOL_VERSION,
    WireError,
    decode_line,
    done_event,
    encode_line,
    error_event,
    heartbeat_event,
    hit_event,
    progress_event,
    warning_event,
)
from .worker import (
    make_stimulus,
    run_shard,
    run_world_group,
    stimulus_inputs,
)

__all__ = [
    "BreakpointSpec",
    "DeadlinePolicy",
    "Divergence",
    "FirstHit",
    "PROTOCOL_VERSION",
    "RetryPolicy",
    "ShardError",
    "ShardReport",
    "ShardResult",
    "ShardSession",
    "ShardSpec",
    "TimelineDivergence",
    "WatchSpec",
    "WireError",
    "WorldGroupSpec",
    "as_deadline_policy",
    "decode_line",
    "default_workers",
    "done_event",
    "encode_line",
    "error_event",
    "failure_record",
    "frame_digest",
    "group_worlds",
    "heartbeat_event",
    "hit_event",
    "location_of",
    "make_stimulus",
    "make_sweep",
    "progress_event",
    "run_shard",
    "run_world_group",
    "stimulus_inputs",
    "warning_event",
]
