"""Supervision policies for the shard farm: retries and deadlines.

The coordinator's event loop (``coordinator.py``) consults these
policies whenever a worker attempt fails.  Failures are classified:

* ``"crash"``   — pipe EOF without a ``done`` event (the process died);
* ``"hang"``    — the per-shard deadline expired or heartbeats went
  silent, and the coordinator terminated the worker;
* ``"corrupt"`` — undecodable wire lines were seen and the attempt
  ended without a usable ``done`` result;
* ``"rpc"``     — the worker reported a *transient* transport failure
  (its symbol-table RPC client exhausted its reconnect budget); the
  worker itself is healthy, so the attempt retries like other
  infrastructure failures;
* ``"error"``   — the worker itself reported an exception (an ``error``
  event).  This is a *clean, deterministic* failure — a bad spec fails
  identically on every attempt — so it is not retried by default.

A :class:`RetryPolicy` decides which classes are retried, how many
attempts a shard gets, and how long to back off between them; when the
fork-path budget is exhausted, ``inline_fallback`` degrades the shard to
inline execution in the coordinator process (no fork, no pipe, no RPC —
the reference path, immune to the infrastructure faults being retried).

A :class:`DeadlinePolicy` derives each attempt's wall-clock deadline
from its cycle budget (``base_s + per_kcycle_s * cycles/1000``) and
bounds heartbeat silence; expiry triggers terminate→kill escalation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Failure classes, as recorded in ShardResult.failures[..]["class"].
CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"
RPC = "rpc"
ERROR = "error"

#: Classes caused by infrastructure (process/pipe/transport/scheduling),
#: not by the spec itself — the sensible default retry set.
INFRA_FAILURES = frozenset({CRASH, HANG, CORRUPT, RPC})


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How shard attempt failures are retried and degraded.

    ``max_attempts`` counts *forked* attempts per shard; once exhausted,
    ``inline_fallback`` (on by default) runs the shard inline in the
    coordinator process instead of giving up — the sweep degrades
    gracefully instead of raising.  Backoff between attempts is
    exponential, capped at ``max_backoff_s``.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    retry_on: frozenset = field(default_factory=lambda: INFRA_FAILURES)
    inline_fallback: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff must be >= 0")
        # Accept any iterable of class names for retry_on.
        object.__setattr__(self, "retry_on", frozenset(self.retry_on))

    def should_retry(self, failure_class: str, attempt: int) -> bool:
        """True when attempt number ``attempt`` (1-based) failed with
        ``failure_class`` and another forked attempt is allowed."""
        return failure_class in self.retry_on and attempt < self.max_attempts

    def wants_fallback(self, failure_class: str) -> bool:
        """True when an exhausted shard should degrade to inline
        execution: only infrastructure failures qualify — a worker-
        reported spec error fails identically inline."""
        return self.inline_fallback and failure_class in self.retry_on

    def backoff_for(self, attempt: int) -> float:
        """Delay before relaunching after ``attempt`` (1-based) failed."""
        return min(
            self.max_backoff_s,
            self.backoff_s * self.backoff_factor ** max(0, attempt - 1),
        )


@dataclass(frozen=True, slots=True)
class DeadlinePolicy:
    """Per-attempt wall-clock deadlines derived from cycle budgets.

    ``deadline_for(cycles)`` is ``base_s + per_kcycle_s * cycles/1000``:
    the base absorbs fork/attach/reset setup, the per-kilocycle term
    scales with the run length.  ``heartbeat_timeout_s`` bounds event
    *silence* independently of total progress — a worker that stops
    emitting for that long is declared hung even before its deadline.
    ``kill_grace_s`` is how long a terminated worker gets to die before
    the coordinator escalates to SIGKILL.
    """

    base_s: float = 10.0
    per_kcycle_s: float = 5.0
    heartbeat_timeout_s: float | None = None
    kill_grace_s: float = 2.0

    def __post_init__(self):
        if self.base_s < 0 or self.per_kcycle_s < 0:
            raise ValueError("deadline terms must be >= 0")
        if self.heartbeat_timeout_s is not None and self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")

    def deadline_for(self, cycles: int) -> float:
        return self.base_s + self.per_kcycle_s * cycles / 1000.0

    @classmethod
    def fixed(cls, seconds: float, **kwargs) -> DeadlinePolicy:
        """A flat per-attempt deadline (the CLI's ``--deadline S``)."""
        return cls(base_s=seconds, per_kcycle_s=0.0, **kwargs)


def as_deadline_policy(value) -> DeadlinePolicy | None:
    """Coerce a user-facing deadline argument: None passes through, a
    number becomes a fixed per-attempt deadline, a policy is itself."""
    if value is None or isinstance(value, DeadlinePolicy):
        return value
    if isinstance(value, (int, float)):
        return DeadlinePolicy.fixed(float(value))
    raise TypeError(
        f"deadline must be None, seconds, or DeadlinePolicy, got {value!r}"
    )


def failure_record(
    attempt: int, failure_class: str, message: str, elapsed_s: float
) -> dict:
    """One entry of ``ShardResult.failures`` — a plain JSON-safe dict so
    it travels the wire and serializes in reports unchanged."""
    return {
        "attempt": attempt,
        "class": failure_class,
        "message": message,
        "elapsed_s": round(elapsed_s, 6),
    }
