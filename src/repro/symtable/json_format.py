"""JSON symbol table interchange format.

The real hgdb accepts symbol tables as JSON as well as SQLite, so hardware
generator frameworks can emit debug information without linking SQLite —
only the *interface* is fixed (paper Sec. 3.4: "a minimum set of primitives
that can be easily provided by each HGF").

Schema (one JSON object)::

    {
      "generator": "repro",
      "top": "FpuCmp",
      "instances": [{"name": "FpuCmp", "module": "FpuCmp",
                     "variables": [{"name": "width", "value": "16", "rtl": false}]}],
      "breakpoints": [{"filename": "...", "line": 42, "column": 0,
                       "instance": "FpuCmp", "node": "_ssa_exc_0",
                       "sink": "exc", "enable": "...", "enable_src": "...",
                       "scope": [{"name": "rm", "value": "rm", "rtl": true}]}]
    }

``load_json`` builds a fully functional in-memory SQLite symbol table from
it; ``dump_json`` exports an existing table.  Round-tripping is lossless —
enforced by tests.
"""

from __future__ import annotations

import json

from .query import SQLiteSymbolTable
from .schema import open_symbol_db

FORMAT_VERSION = 1


def dump_json(table: SQLiteSymbolTable) -> str:
    """Serialize a symbol table into the JSON interchange format."""
    instances = []
    for inst in table.instances():
        instances.append(
            {
                "name": inst.name,
                "module": inst.module,
                "variables": [
                    {"name": v.name, "value": v.value, "rtl": v.is_rtl}
                    for v in table.generator_variables(inst.id)
                ],
            }
        )
    breakpoints = []
    for bp in table.all_breakpoints():
        breakpoints.append(
            {
                "filename": bp.filename,
                "line": bp.line,
                "column": bp.column,
                "instance": bp.instance_name,
                "node": bp.node,
                "sink": bp.sink,
                "enable": bp.enable,
                "enable_src": bp.enable_src,
                "scope": [
                    {"name": v.name, "value": v.value, "rtl": v.is_rtl}
                    for v in table.scope_variables(bp.id)
                ],
            }
        )
    doc = {
        "version": FORMAT_VERSION,
        "generator": "repro",
        "top": table.top_name(),
        "debug_mode": table.attribute("debug_mode") == "1",
        "instances": instances,
        "breakpoints": breakpoints,
    }
    return json.dumps(doc, indent=1)


class JsonFormatError(Exception):
    """Raised on malformed JSON symbol tables."""


def load_json(text: str, path: str = ":memory:") -> SQLiteSymbolTable:
    """Build a queryable symbol table from the JSON interchange format."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JsonFormatError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "top" not in doc or "instances" not in doc:
        raise JsonFormatError("missing required keys (top, instances)")
    if doc.get("version", FORMAT_VERSION) > FORMAT_VERSION:
        raise JsonFormatError(f"unsupported format version {doc['version']}")

    conn = open_symbol_db(path)
    cur = conn.cursor()
    cur.execute("INSERT INTO attribute(name, value) VALUES ('top', ?)", (doc["top"],))
    cur.execute(
        "INSERT INTO attribute(name, value) VALUES ('debug_mode', ?)",
        (str(int(bool(doc.get("debug_mode", False)))),),
    )

    instance_ids: dict[str, int] = {}
    for inst in doc["instances"]:
        cur.execute(
            "INSERT INTO instance(name, module) VALUES (?, ?)",
            (inst["name"], inst.get("module", "")),
        )
        iid = cur.lastrowid
        instance_ids[inst["name"]] = iid
        for var in inst.get("variables", ()):
            cur.execute(
                "INSERT INTO variable(value, is_rtl) VALUES (?, ?)",
                (var["value"], int(bool(var.get("rtl", True)))),
            )
            cur.execute(
                "INSERT INTO generator_variable(instance_id, variable_id, name)"
                " VALUES (?, ?, ?)",
                (iid, cur.lastrowid, var["name"]),
            )

    for bp in doc.get("breakpoints", ()):
        iid = instance_ids.get(bp["instance"])
        if iid is None:
            raise JsonFormatError(
                f"breakpoint references unknown instance {bp['instance']!r}"
            )
        cur.execute(
            "INSERT INTO breakpoint(instance_id, filename, line_num, column_num,"
            " node, sink, enable, enable_src) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                iid,
                bp["filename"],
                int(bp["line"]),
                int(bp.get("column", 0)),
                bp.get("node", ""),
                bp.get("sink", ""),
                bp.get("enable"),
                bp.get("enable_src"),
            ),
        )
        bp_id = cur.lastrowid
        for var in bp.get("scope", ()):
            cur.execute(
                "INSERT INTO variable(value, is_rtl) VALUES (?, ?)",
                (var["value"], int(bool(var.get("rtl", True)))),
            )
            cur.execute(
                "INSERT INTO scope_variable(breakpoint_id, variable_id, name)"
                " VALUES (?, ?, ?)",
                (bp_id, cur.lastrowid, var["name"]),
            )
    conn.commit()
    return SQLiteSymbolTable(conn)


def load_json_file(path: str) -> SQLiteSymbolTable:
    """Load a JSON symbol table from disk."""
    with open(path) as f:
        return load_json(f.read())
