"""Symbol table generation — the output side of paper Algorithm 1.

``write_symbol_table`` turns a compiled :class:`repro.Design` (whose
``DebugInfo`` already survived the optimize-then-collect pipeline) into the
SQLite schema of Fig. 3.  A module instantiated N times yields N breakpoint
rows per source statement — the concurrent hardware "threads" of Fig. 4B.
"""

from __future__ import annotations

import sqlite3

from ..ir.debug import DebugEntry, DebugInfo
from ..ir.stmt import Circuit, DefInstance, GeneratorVar, walk_stmts
from .schema import open_symbol_db


def _enumerate_instances(circuit: Circuit) -> list[tuple[str, str]]:
    """All (hierarchical path, module name) pairs, rooted at the main
    module's name — the *partial view* the symbol table has (Sec. 3.4)."""
    out: list[tuple[str, str]] = []

    def visit(path: str, module: str) -> None:
        out.append((path, module))
        for s in walk_stmts(circuit.modules[module].body):
            if isinstance(s, DefInstance):
                visit(f"{path}.{s.name}", s.module)

    visit(circuit.main, circuit.main)
    return out


def write_symbol_table(
    design,
    path: str = ":memory:",
) -> sqlite3.Connection:
    """Build the symbol table database for a compiled design.

    Args:
        design: a :class:`repro.Design` (needs ``.low``, ``.debug_info``,
            and the High-form annotations for generator variables).
        path: SQLite target (file path or ``":memory:"``).
    """
    circuit: Circuit = design.low
    debug: DebugInfo = design.debug_info
    conn = open_symbol_db(path)
    cur = conn.cursor()

    cur.execute(
        "INSERT INTO attribute(name, value) VALUES ('top', ?)", (circuit.main,)
    )
    cur.execute(
        "INSERT INTO attribute(name, value) VALUES ('debug_mode', ?)",
        (str(int(design.result.debug_mode)),),
    )

    instances = _enumerate_instances(circuit)
    instance_ids: dict[str, int] = {}
    module_instances: dict[str, list[int]] = {}
    for inst_path, module in instances:
        cur.execute(
            "INSERT INTO instance(name, module) VALUES (?, ?)",
            (inst_path, module),
        )
        iid = cur.lastrowid
        instance_ids[inst_path] = iid
        module_instances.setdefault(module, []).append(iid)

    def add_variable(value: str, is_rtl: bool) -> int:
        cur.execute(
            "INSERT INTO variable(value, is_rtl) VALUES (?, ?)",
            (value, int(is_rtl)),
        )
        return cur.lastrowid

    # Generator variables: one row per (annotation, instance of module).
    for ann in design.high.annotations:
        if not isinstance(ann, GeneratorVar):
            continue
        for iid in module_instances.get(ann.module, ()):
            vid = add_variable(ann.value, ann.is_rtl)
            cur.execute(
                "INSERT INTO generator_variable(instance_id, variable_id, name)"
                " VALUES (?, ?, ?)",
                (iid, vid, ann.name),
            )

    # Breakpoints + scope variables.
    for module_name, mod_debug in debug.modules.items():
        iids = module_instances.get(module_name, ())
        if not iids:
            continue  # module optimized out of the hierarchy
        for entry in mod_debug.entries:
            for iid in iids:
                cur.execute(
                    "INSERT INTO breakpoint(instance_id, filename, line_num,"
                    " column_num, node, sink, enable, enable_src)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        iid,
                        entry.info.filename,
                        entry.info.line,
                        entry.info.column,
                        entry.node,
                        entry.sink,
                        entry.enable,
                        entry.enable_src,
                    ),
                )
                bp_id = cur.lastrowid
                _write_scope_vars(cur, add_variable, bp_id, entry, mod_debug)

    conn.commit()
    return conn


def _write_scope_vars(cur, add_variable, bp_id: int, entry: DebugEntry, mod_debug) -> None:
    """The variables visible at a breakpoint: every module-level source
    variable, with the entry's SSA ``var_map`` taking precedence (the
    context-dependent mapping of paper Listing 2)."""
    seen: set[str] = set()
    for name, rtl in entry.var_map.items():
        vid = add_variable(rtl, True)
        cur.execute(
            "INSERT INTO scope_variable(breakpoint_id, variable_id, name)"
            " VALUES (?, ?, ?)",
            (bp_id, vid, name),
        )
        seen.add(name)
    for name, rtl in mod_debug.variables.items():
        if name in seen or name.startswith("_"):
            continue
        vid = add_variable(rtl, True)
        cur.execute(
            "INSERT INTO scope_variable(breakpoint_id, variable_id, name)"
            " VALUES (?, ?, ?)",
            (bp_id, vid, name),
        )
