"""RPC access to a symbol table (paper Fig. 1: "Native | RPC").

HGFs that maintain their own symbol tables serve them over RPC instead of
handing hgdb a SQLite file; "since the simulator is paused whenever hgdb
interacts with the symbol table ... the symbol table performance is less
important compared to the simulator interface" (Sec. 3.4).

The wire format is JSON-lines over TCP: one request object per line,
one response per line.  (The original uses WebSockets; the framing is
irrelevant to the protocol content — see DESIGN.md substitutions.)
"""

from __future__ import annotations

import contextlib
import json
import socket
import socketserver
import threading
import time

from .query import BreakpointRec, InstanceRec, SymbolTableInterface, VarRec

_METHODS = frozenset(
    {
        "breakpoints_at",
        "scope_variables",
        "resolve_scoped_var",
        "resolve_instance_var",
        "instances",
        "generator_variables",
        "all_breakpoints",
        "breakpoint",
        "filenames",
        "breakpoint_lines",
        "attribute",
    }
)


def _encode(obj):
    if isinstance(obj, (BreakpointRec, InstanceRec, VarRec)):
        d = {k: getattr(obj, k) for k in obj.__dataclass_fields__}
        d["__type__"] = type(obj).__name__
        return d
    if isinstance(obj, list):
        return [_encode(x) for x in obj]
    return obj


def _decode(obj):
    if isinstance(obj, list):
        return [_decode(x) for x in obj]
    if isinstance(obj, dict) and "__type__" in obj:
        kind = obj.pop("__type__")
        cls = {"BreakpointRec": BreakpointRec, "InstanceRec": InstanceRec, "VarRec": VarRec}[kind]
        return cls(**obj)
    return obj


class SymbolTableServer:
    """Serve a symbol table over TCP JSON-lines.

    ``faults`` (settable any time, e.g. by a chaos-testing shard
    coordinator) is an optional :class:`repro.faults.RPCFaultInjector`:
    when armed, a response may be *delayed* (past a client's per-request
    timeout) or *dropped* (connection closed unanswered).  Every query
    is read-only, so a client that times out, reconnects, and re-sends
    the same request gets the same answer — which is exactly what the
    hardened :class:`RPCSymbolTable` does.
    """

    def __init__(self, table: SymbolTableInterface, host: str = "127.0.0.1",
                 port: int = 0, faults=None):
        self.table = table
        self.faults = faults
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                for line in self.rfile:
                    # A non-JSON line must not kill the handler: parse
                    # failures leave no `req` in scope, so the request id
                    # defaults to null and the client gets a proper error
                    # response instead of a dropped connection.
                    req_id = None
                    try:
                        req = json.loads(line)
                        if not isinstance(req, dict):
                            raise ValueError("request must be a JSON object")
                        req_id = req.get("id")
                        method = req.get("method")
                        params = req.get("params", [])
                        if method not in _METHODS:
                            raise ValueError(f"unknown method {method!r}")
                        result = getattr(outer.table, method)(*params)
                        resp = {"id": req_id, "result": _encode(result)}
                    except Exception as exc:  # noqa: BLE001 - protocol boundary
                        resp = {
                            "id": req_id,
                            "error": str(exc) or type(exc).__name__,
                        }
                    injector = outer.faults
                    if injector is not None:
                        fault = injector.decide()
                        if fault is not None:
                            kind, delay_s = fault
                            if kind == "drop":
                                # Close the connection unanswered; the
                                # request already executed (read-only, so
                                # a client-side replay is safe).
                                return
                            time.sleep(delay_s)
                    self.wfile.write(json.dumps(resp).encode() + b"\n")
                    self.wfile.flush()

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((host, port), Handler)
        self.address = self._server.server_address
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)

    def start(self) -> tuple[str, int]:
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False


class RPCSymbolTable(SymbolTableInterface):
    """Client-side symbol table speaking the JSON-lines protocol.

    Hardened for flaky transports: every request is bounded by a
    per-request socket ``timeout``, and a transport failure — timed-out
    or dropped response, closed connection, undecodable line — triggers
    a bounded reconnect-with-backoff and a replay of the request (every
    method is a read-only query, so replays are safe).  Protocol-level
    failures (server-reported errors, response id mismatches) are never
    retried: they are deterministic, not transient.

    ``obs`` (a ``repro.obs.Obs``, or None) arms request accounting:
    request count and latency, reconnect attempts, and replayed
    requests.  Shard workers pass their per-shard ``Obs`` so RPC health
    is attributable per shard in the aggregated report.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0,
                 max_reconnects: int = 3, reconnect_backoff_s: float = 0.05,
                 obs=None):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._max_reconnects = max_reconnects
        self._reconnect_backoff_s = reconnect_backoff_s
        self._lock = threading.Lock()
        self._next_id = 1
        self._closed = False
        # Metric instruments are resolved once here; _call guards on a
        # single attribute so the unobserved path stays flat.
        self._m_requests = self._m_reconnects = self._m_replays = None
        self._h_latency = None
        if obs is not None and obs.metrics is not None:
            m = obs.metrics
            self._m_requests = m.counter(
                "rpc_requests_total", "Symbol-table RPC requests completed"
            )
            self._m_reconnects = m.counter(
                "rpc_reconnects_total", "RPC reconnect attempts after transport failures"
            )
            self._m_replays = m.counter(
                "rpc_replays_total", "Requests replayed on a fresh connection"
            )
            self._h_latency = m.histogram(
                "rpc_request_seconds",
                "Symbol-table RPC request latency (incl. reconnect/replay)",
                bounds=(0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
            )
        self._connect()

    def _connect(self) -> None:
        # create_connection leaves `timeout` armed on the socket, so it
        # bounds every send/recv — the per-request timeout.
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rwb")

    def _drop_connection(self) -> None:
        with contextlib.suppress(OSError):
            self._file.close()
            self._sock.close()

    def close(self) -> None:
        self._closed = True
        self._drop_connection()

    def __enter__(self) -> RPCSymbolTable:
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _call(self, method: str, *params):
        with self._lock:
            if self._closed:
                raise ConnectionError("symbol table RPC client is closed")
            t0 = time.monotonic() if self._h_latency is not None else 0.0
            last_exc: Exception | None = None
            for attempt in range(self._max_reconnects + 1):
                if attempt:
                    if self._m_reconnects is not None:
                        self._m_reconnects.inc()
                    self._drop_connection()
                    time.sleep(
                        self._reconnect_backoff_s * 2 ** (attempt - 1)
                    )
                    try:
                        self._connect()
                    except OSError as exc:
                        last_exc = exc
                        continue
                    if self._m_replays is not None:
                        self._m_replays.inc()
                req_id = self._next_id
                self._next_id += 1
                msg = {"id": req_id, "method": method, "params": list(params)}
                try:
                    self._file.write(json.dumps(msg).encode() + b"\n")
                    self._file.flush()
                    line = self._file.readline()
                    if not line:
                        raise ConnectionError(
                            "symbol table server closed the connection"
                        )
                    resp = json.loads(line)
                except (ConnectionError, ValueError, OSError) as exc:
                    # Transport trouble (socket.timeout is an OSError):
                    # reconnect and replay.  The dead connection cannot
                    # deliver a stale response later, so replays never
                    # mispair.
                    last_exc = exc
                    continue
                # "error" is checked by presence, not truthiness: an empty
                # error string is still an error, not a None result.
                if "error" in resp:
                    raise RuntimeError(
                        f"symbol table RPC error: {resp['error']}"
                    )
                if resp.get("id") != req_id:
                    # A stale or misrouted response must not be silently
                    # paired with this request — that would corrupt every
                    # later call.  Deterministic server bug: no retry.
                    raise RuntimeError(
                        f"symbol table RPC response id mismatch: "
                        f"sent {req_id}, got {resp.get('id')!r}"
                    )
                if self._h_latency is not None:
                    self._h_latency.observe(time.monotonic() - t0)
                    self._m_requests.inc()
                return _decode(resp.get("result"))
            raise ConnectionError(
                f"symbol table RPC {method!r} failed after "
                f"{self._max_reconnects} reconnect(s): {last_exc}"
            )

    # -- interface methods, all delegated ---------------------------------

    def breakpoints_at(self, filename, line, column=None):
        return self._call("breakpoints_at", filename, line, column)

    def scope_variables(self, breakpoint_id):
        return self._call("scope_variables", breakpoint_id)

    def resolve_scoped_var(self, breakpoint_id, name):
        return self._call("resolve_scoped_var", breakpoint_id, name)

    def resolve_instance_var(self, instance_id, name):
        return self._call("resolve_instance_var", instance_id, name)

    def instances(self):
        return self._call("instances")

    def generator_variables(self, instance_id):
        return self._call("generator_variables", instance_id)

    def all_breakpoints(self):
        return self._call("all_breakpoints")

    def breakpoint(self, breakpoint_id):
        return self._call("breakpoint", breakpoint_id)

    def filenames(self):
        return self._call("filenames")

    def breakpoint_lines(self, filename):
        return self._call("breakpoint_lines", filename)

    def attribute(self, name):
        return self._call("attribute", name)
