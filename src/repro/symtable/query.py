"""The unified symbol table interface (paper Sec. 3.4).

The paper defines four primitives every HGF-provided symbol table must
answer; :class:`SymbolTableInterface` states them, and
:class:`SQLiteSymbolTable` is the native (ABI) implementation over the
Fig. 3 schema.  ``repro.symtable.rpc`` provides the RPC-backed variant for
frameworks that host their own symbol tables.

* get breakpoints from source location   -> :meth:`breakpoints_at`
* get scope information for a breakpoint -> :meth:`scope_variables`
* resolve scoped variable name to RTL    -> :meth:`resolve_scoped_var`
* resolve instance variable name to RTL  -> :meth:`resolve_instance_var`
"""

from __future__ import annotations

import sqlite3
from abc import ABC, abstractmethod
from dataclasses import dataclass

from .schema import open_symbol_db


@dataclass(frozen=True, slots=True)
class BreakpointRec:
    """One emulatable breakpoint (a source statement in one instance)."""

    id: int
    instance_id: int
    instance_name: str
    filename: str
    line: int
    column: int
    node: str
    sink: str
    enable: str | None
    enable_src: str | None

    def order_key(self) -> tuple[str, int, int, str]:
        """Scheduling order (paper Sec. 3.2): lexical order then instance."""
        return (self.filename, self.line, self.column, self.instance_name)


@dataclass(frozen=True, slots=True)
class VarRec:
    """A variable binding: name -> RTL signal (or constant text)."""

    name: str
    value: str
    is_rtl: bool


@dataclass(frozen=True, slots=True)
class InstanceRec:
    id: int
    name: str
    module: str


class SymbolTableInterface(ABC):
    """The four primitives of paper Sec. 3.4 plus enumeration helpers."""

    @abstractmethod
    def breakpoints_at(
        self, filename: str, line: int, column: int | None = None
    ) -> list[BreakpointRec]:
        """Translate a source location into concrete breakpoints."""

    @abstractmethod
    def scope_variables(self, breakpoint_id: int) -> list[VarRec]:
        """Variables visible in a breakpoint's scope (frame construction)."""

    @abstractmethod
    def resolve_scoped_var(self, breakpoint_id: int, name: str) -> str | None:
        """Scoped variable name -> RTL name (None if not in scope)."""

    @abstractmethod
    def resolve_instance_var(self, instance_id: int, name: str) -> VarRec | None:
        """Instance (generator) variable name -> RTL name or constant."""

    # -- enumeration helpers used by the runtime -------------------------

    @abstractmethod
    def instances(self) -> list[InstanceRec]:
        """All instances in the symbol table's (partial) hierarchy."""

    @abstractmethod
    def generator_variables(self, instance_id: int) -> list[VarRec]:
        """All generator variables of an instance (paper Fig. 4A)."""

    @abstractmethod
    def all_breakpoints(self) -> list[BreakpointRec]:
        """Every breakpoint, in scheduling order."""

    @abstractmethod
    def breakpoint(self, breakpoint_id: int) -> BreakpointRec | None:
        """Look up one breakpoint by id."""

    @abstractmethod
    def filenames(self) -> list[str]:
        """Source files that contain breakpoints."""

    @abstractmethod
    def breakpoint_lines(self, filename: str) -> list[int]:
        """Lines of ``filename`` that have at least one breakpoint."""

    @abstractmethod
    def attribute(self, name: str) -> str | None:
        """Free-form metadata (e.g. ``top``, ``debug_mode``)."""

    def top_name(self) -> str:
        top = self.attribute("top")
        if top is None:
            raise ValueError("symbol table missing 'top' attribute")
        return top


def _bp_from_row(row) -> BreakpointRec:
    return BreakpointRec(
        id=row["id"],
        instance_id=row["instance_id"],
        instance_name=row["iname"],
        filename=row["filename"],
        line=row["line_num"],
        column=row["column_num"],
        node=row["node"],
        sink=row["sink"],
        enable=row["enable"],
        enable_src=row["enable_src"],
    )


_BP_SELECT = (
    "SELECT b.*, i.name AS iname FROM breakpoint b"
    " JOIN instance i ON i.id = b.instance_id"
)


class SQLiteSymbolTable(SymbolTableInterface):
    """Native symbol table over the Fig. 3 SQLite schema."""

    def __init__(self, conn_or_path):
        self.conn = (
            conn_or_path
            if isinstance(conn_or_path, sqlite3.Connection)
            else open_symbol_db(conn_or_path)
        )
        self.conn.row_factory = sqlite3.Row

    def breakpoints_at(self, filename, line, column=None) -> list[BreakpointRec]:
        sql = _BP_SELECT + " WHERE b.filename = ? AND b.line_num = ?"
        params: list = [filename, line]
        if column is not None:
            sql += " AND b.column_num = ?"
            params.append(column)
        sql += " ORDER BY b.column_num, i.name, b.id"
        return [_bp_from_row(r) for r in self.conn.execute(sql, params)]

    def scope_variables(self, breakpoint_id) -> list[VarRec]:
        rows = self.conn.execute(
            "SELECT sv.name, v.value, v.is_rtl FROM scope_variable sv"
            " JOIN variable v ON v.id = sv.variable_id"
            " WHERE sv.breakpoint_id = ? ORDER BY sv.rowid",
            (breakpoint_id,),
        )
        return [VarRec(r["name"], r["value"], bool(r["is_rtl"])) for r in rows]

    def resolve_scoped_var(self, breakpoint_id, name) -> str | None:
        row = self.conn.execute(
            "SELECT v.value FROM scope_variable sv"
            " JOIN variable v ON v.id = sv.variable_id"
            " WHERE sv.breakpoint_id = ? AND sv.name = ? AND v.is_rtl = 1",
            (breakpoint_id, name),
        ).fetchone()
        return row["value"] if row else None

    def resolve_instance_var(self, instance_id, name) -> VarRec | None:
        row = self.conn.execute(
            "SELECT gv.name, v.value, v.is_rtl FROM generator_variable gv"
            " JOIN variable v ON v.id = gv.variable_id"
            " WHERE gv.instance_id = ? AND gv.name = ?",
            (instance_id, name),
        ).fetchone()
        if row is None:
            return None
        return VarRec(row["name"], row["value"], bool(row["is_rtl"]))

    def instances(self) -> list[InstanceRec]:
        rows = self.conn.execute("SELECT id, name, module FROM instance ORDER BY id")
        return [InstanceRec(r["id"], r["name"], r["module"]) for r in rows]

    def generator_variables(self, instance_id) -> list[VarRec]:
        rows = self.conn.execute(
            "SELECT gv.name, v.value, v.is_rtl FROM generator_variable gv"
            " JOIN variable v ON v.id = gv.variable_id"
            " WHERE gv.instance_id = ? ORDER BY gv.rowid",
            (instance_id,),
        )
        return [VarRec(r["name"], r["value"], bool(r["is_rtl"])) for r in rows]

    def all_breakpoints(self) -> list[BreakpointRec]:
        rows = self.conn.execute(
            _BP_SELECT + " ORDER BY b.filename, b.line_num, b.column_num, i.name, b.id"
        )
        return [_bp_from_row(r) for r in rows]

    def breakpoint(self, breakpoint_id) -> BreakpointRec | None:
        row = self.conn.execute(
            _BP_SELECT + " WHERE b.id = ?", (breakpoint_id,)
        ).fetchone()
        return _bp_from_row(row) if row else None

    def filenames(self) -> list[str]:
        rows = self.conn.execute("SELECT DISTINCT filename FROM breakpoint ORDER BY 1")
        return [r["filename"] for r in rows]

    def breakpoint_lines(self, filename) -> list[int]:
        rows = self.conn.execute(
            "SELECT DISTINCT line_num FROM breakpoint WHERE filename = ? ORDER BY 1",
            (filename,),
        )
        return [r["line_num"] for r in rows]

    def attribute(self, name) -> str | None:
        row = self.conn.execute(
            "SELECT value FROM attribute WHERE name = ?", (name,)
        ).fetchone()
        return row["value"] if row else None
