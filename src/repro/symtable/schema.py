"""SQLite schema for the hgdb symbol table (paper Fig. 3).

Tables (arrows in the paper's figure are foreign keys):

* ``instance``            — hierarchical instance names in the generated RTL
* ``breakpoint``          — source location + enable condition, per instance
* ``variable``            — a value holder: either an RTL signal name
                            (``is_rtl = 1``) or a constant rendered as text
* ``scope_variable``      — variables visible in a breakpoint's scope
* ``generator_variable``  — generator-object attributes of an instance
* ``attribute``           — free-form metadata (top module, debug mode)

The ``enable`` column stores the SSA-derived enable condition as an
expression string over RTL signal names; ``enable_src`` is the same
condition rendered with source-level names for display (``data[0] % 2`` in
paper Listing 2).
"""

from __future__ import annotations

import sqlite3

SCHEMA = """
CREATE TABLE instance (
    id      INTEGER PRIMARY KEY,
    name    TEXT NOT NULL,
    module  TEXT NOT NULL
);

CREATE TABLE breakpoint (
    id          INTEGER PRIMARY KEY,
    instance_id INTEGER NOT NULL REFERENCES instance(id),
    filename    TEXT NOT NULL,
    line_num    INTEGER NOT NULL,
    column_num  INTEGER NOT NULL DEFAULT 0,
    node        TEXT NOT NULL,
    sink        TEXT NOT NULL,
    enable      TEXT,
    enable_src  TEXT
);

CREATE TABLE variable (
    id     INTEGER PRIMARY KEY,
    value  TEXT NOT NULL,
    is_rtl INTEGER NOT NULL DEFAULT 1
);

CREATE TABLE scope_variable (
    breakpoint_id INTEGER NOT NULL REFERENCES breakpoint(id),
    variable_id   INTEGER NOT NULL REFERENCES variable(id),
    name          TEXT NOT NULL
);

CREATE TABLE generator_variable (
    instance_id INTEGER NOT NULL REFERENCES instance(id),
    variable_id INTEGER NOT NULL REFERENCES variable(id),
    name        TEXT NOT NULL
);

CREATE TABLE attribute (
    name  TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE INDEX idx_bp_loc ON breakpoint(filename, line_num, column_num);
CREATE INDEX idx_bp_instance ON breakpoint(instance_id);
CREATE INDEX idx_scope_bp ON scope_variable(breakpoint_id);
CREATE INDEX idx_gen_inst ON generator_variable(instance_id);
"""


def create_schema(conn: sqlite3.Connection) -> None:
    """Create all tables and indices on an empty database."""
    conn.executescript(SCHEMA)
    conn.commit()


def open_symbol_db(path: str = ":memory:") -> sqlite3.Connection:
    """Open (and initialize, if empty) a symbol table database."""
    conn = sqlite3.connect(path, check_same_thread=False)
    conn.row_factory = sqlite3.Row
    row = conn.execute(
        "SELECT name FROM sqlite_master WHERE type='table' AND name='breakpoint'"
    ).fetchone()
    if row is None:
        create_schema(conn)
    return conn
