"""repro.symtable — the hgdb symbol table.

SQLite schema per paper Fig. 3; generation from compiled designs (Algorithm
1); native and RPC-backed query interfaces (Fig. 1).
"""

from .json_format import JsonFormatError, dump_json, load_json, load_json_file
from .query import (
    BreakpointRec,
    InstanceRec,
    SQLiteSymbolTable,
    SymbolTableInterface,
    VarRec,
)
from .rpc import RPCSymbolTable, SymbolTableServer
from .schema import create_schema, open_symbol_db
from .writer import write_symbol_table

__all__ = [
    "BreakpointRec",
    "JsonFormatError",
    "dump_json",
    "load_json",
    "load_json_file",
    "InstanceRec",
    "RPCSymbolTable",
    "SQLiteSymbolTable",
    "SymbolTableInterface",
    "SymbolTableServer",
    "VarRec",
    "create_schema",
    "open_symbol_db",
    "write_symbol_table",
]
