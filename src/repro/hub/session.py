"""One hub-owned debug session: a private simulator over the shared design.

The hub compiles a design once; a :class:`DebugSession` is the per-client
fork of everything that is cheap — a fresh
:class:`~repro.sim.store.ValueStore`, private memories and
:class:`~repro.sim.timeline.Timeline`, its own breakpoints/watchpoints and
timeline cursor — over the one hot
:class:`~repro.sim.compiler.CompiledDesign` (which is value-independent:
generated code, cone caches, signal metadata).  This is the same
copy-on-write trick the shard coordinator plays with forked workers,
done in-process with threads.

Each session opens its own SQLite connection to the hub's on-disk symbol
table (connections are not shareable across the session threads the hub
runs blocking calls on) and exposes the whole
:class:`~repro.hub.api.SessionHandle` surface through :meth:`invoke`, the
hub server's method-name dispatch.
"""

from __future__ import annotations

import time as _time

from ..core.runtime import Runtime
from ..sim.engine import Simulator
from ..symtable.query import SQLiteSymbolTable
from .api import LocalSession, SessionError, SessionOptions, StopInfo

#: SessionHandle methods reachable over the wire, by name.  An allowlist,
#: not getattr-anything: the transport must never expose internals.
_WIRE_METHODS = frozenset(
    {
        "describe",
        "peek",
        "poke",
        "evaluate",
        "get_time",
        "set_time",
        "timeline_info",
        "history",
        "add_breakpoint",
        "add_watchpoint",
        "remove_breakpoint",
        "clear_breakpoints",
        "ignore",
        "breakpoints",
        "watchpoints",
        "run",
        "cont",
        "step",
        "reverse_step",
        "reverse_cont",
        "pause",
        "detach",
        "reset",
        "files",
        "warnings",
        "resolve_file",
        "stats",
        "metrics",
        "lint",
        "state_digest",
        "shard_sweep",
    }
)


class DebugSession:
    """A named, evictable :class:`LocalSession` owned by the debug hub."""

    def __init__(
        self,
        sid: int,
        circuit,
        compiled,
        symtable_path: str,
        options: SessionOptions,
        seed: int | None = None,
        name: str | None = None,
        obs=None,
    ):
        self.sid = sid
        self.name = name or f"session-{sid}"
        self.created = _time.monotonic()
        self.last_used = self.created
        self.seed = seed
        self._obs = obs
        sim = Simulator(circuit, compiled=compiled, options=options)
        runtime = Runtime(sim, SQLiteSymbolTable(symtable_path))
        stimulus = None
        if seed is not None:
            # The shard determinism contract (spec.py): sorted-name random
            # pokes from Random(seed) each cycle.  A hub session running
            # under a seed is bit-identical to a standalone Simulator
            # driven by the same contract — the parity benchmarks pin it.
            from ..shard.spec import ShardSpec
            from ..shard.worker import make_stimulus

            stimulus = make_stimulus(
                sim, ShardSpec(shard_id=sid, seed=seed, cycles=0)
            )
        self.session = LocalSession(runtime, stimulus=stimulus, name=self.name)
        self.cycles_run = 0

    @property
    def state(self) -> str:
        return self.session._state

    @property
    def idle_for(self) -> float:
        return _time.monotonic() - self.last_used

    def touch(self) -> None:
        self.last_used = _time.monotonic()

    def invoke(self, method: str, params: dict):
        """Dispatch one wire request onto the session handle.

        Returns a JSON-ready value; :class:`StopInfo` results are
        serialized with ``to_wire``.
        """
        if method not in _WIRE_METHODS:
            raise SessionError(f"unknown session method {method!r}")
        self.touch()
        before = self.session.get_time()
        try:
            result = getattr(self.session, method)(**(params or {}))
        finally:
            self.touch()
        if isinstance(result, StopInfo):
            self.cycles_run += max(0, self.session.get_time() - before)
            if self._obs is not None and self._obs.metrics is not None:
                self._obs.metrics.counter(
                    "hub_session_cycles_total",
                    "cycles simulated on behalf of hub sessions",
                ).inc(max(0, self.session.get_time() - before))
            result = result.to_wire()
        return result

    def close(self) -> None:
        """Detach the underlying session, aborting any run in flight."""
        try:
            self.session.detach()
        except SessionError:
            pass
