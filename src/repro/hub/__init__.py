"""repro.hub: persistent multi-session debug server.

Elaborate, lint, and compile a design **once**, then multiplex many
concurrent debug sessions over the hot
:class:`~repro.sim.compiler.CompiledDesign` — the paper's
decoupled-debugger architecture at "debug service" scale instead of one
process per engineer.  See ``docs/hub.md``.

The light half of the package — the :class:`SessionHandle` protocol,
:class:`SessionOptions`, :class:`StopInfo`, :class:`LocalSession` — lives
in :mod:`repro.hub.api` and imports eagerly (the simulator itself depends
on it for options resolution).  The server/client halves pull in asyncio
and sockets and load lazily.
"""

from __future__ import annotations

from .api import (
    LocalSession,
    SessionError,
    SessionHandle,
    SessionOptions,
    StopInfo,
    resolve_session_options,
)

__all__ = [
    "LocalSession",
    "SessionError",
    "SessionHandle",
    "SessionOptions",
    "StopInfo",
    "resolve_session_options",
    "DebugHub",
    "DebugSession",
    "HubClient",
    "HubSession",
]

_LAZY = {
    "DebugHub": "server",
    "DebugSession": "session",
    "HubClient": "client",
    "HubSession": "client",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{mod}", __name__), name)
