"""The unified session API — one surface for every way to debug a design.

The paper's architectural bet (Sec. 3) is that the debugger never talks to
a concrete simulator: it talks to a small interface.  This module extends
that bet from the *runtime* layer to the *client* layer: a
:class:`SessionHandle` is everything a debugger front end (console, DAP
adapter, scripts) may do to a debug session — run/pause/step/set_time,
peek/poke, breakpoints, history, stats — and every backend implements it:

* :class:`LocalSession` adapts an in-process :class:`~repro.core.Runtime`
  (live :class:`~repro.sim.Simulator` or trace
  :class:`~repro.trace.ReplayEngine`) to the handle;
* :class:`repro.hub.session.DebugSession` is a LocalSession owned by the
  debug hub, one per attached client;
* :class:`repro.hub.client.HubSession` speaks the same handle over the
  hub's newline-JSON wire.

Front ends in ``repro.client`` drive only this protocol — the same console
works against a live simulator, a replayed trace, or a remote hub session.

:class:`SessionOptions` is the one shared session configuration record
(store / obs / strict / snapshot budget) accepted by ``Simulator``,
``ShardSession``, and the hub server, replacing the per-constructor kwarg
drift; the legacy keywords keep working behind a ``DeprecationWarning``
(see :func:`resolve_session_options`).
"""

from __future__ import annotations

import queue
import threading
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields, replace

from ..core.runtime import (
    CONTINUE,
    DETACH,
    REVERSE_CONTINUE,
    REVERSE_STEP,
    STEP,
    Command,
    HitGroup,
    Runtime,
)
from ..sim.interface import SimulatorError


class SessionError(Exception):
    """Raised on invalid session operations (wrong state, no capability)."""


# -- shared session configuration ------------------------------------------


@dataclass(frozen=True, slots=True)
class SessionOptions:
    """The one session configuration record shared across the stack.

    ``Simulator``, ``ShardSession``, and the hub server all accept
    ``options=SessionOptions(...)`` instead of re-declaring these keywords
    with subtly different defaults.  Field semantics match the historical
    ``Simulator`` kwargs they replace (see ``repro.sim.engine``).
    """

    store: str | None = None        #: value-store backend ($REPRO_VALUE_STORE)
    obs: object = None              #: observability depth ($REPRO_OBS)
    strict: object = None           #: compile-time lint gate ($REPRO_LINT)
    fast: bool = True               #: incremental-cone settle path
    snapshots: int = 0              #: retained history entries (0 = off)
    snapshot_bytes: int | None = None   #: byte-bounded history retention
    snapshot_codec: str | None = None   #: timeline delta codec (raw/rle)
    keyframe_every: int = 0         #: periodic full keyframes


# Legacy-kwarg deprecation is reported once per (owner, keyword-set) per
# process: the suite constructs thousands of simulators and a warning per
# call would drown real output without adding information.
_LEGACY_WARNED: set[str] = set()


def resolve_session_options(
    options: SessionOptions | None,
    legacy: dict,
    owner: str,
) -> SessionOptions:
    """Fold explicitly-passed legacy kwargs into a :class:`SessionOptions`.

    ``legacy`` holds only the keywords the caller actually supplied.  Any
    such keyword is deprecated in favor of ``options=`` and reports a
    :class:`DeprecationWarning` (once per owner/keyword-set per process);
    its value still wins over the corresponding ``options`` field, so old
    call sites keep their exact behavior.
    """
    known = {f.name for f in fields(SessionOptions)}
    unknown = set(legacy) - known
    if unknown:
        raise TypeError(f"{owner}: unknown session option(s) {sorted(unknown)}")
    if legacy:
        tag = f"{owner}:{','.join(sorted(legacy))}"
        if tag not in _LEGACY_WARNED:
            _LEGACY_WARNED.add(tag)
            warnings.warn(
                f"{owner}({', '.join(sorted(legacy))}=...) is deprecated; "
                f"pass options=SessionOptions(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
    base = options if options is not None else SessionOptions()
    return replace(base, **legacy) if legacy else base


# -- stop reporting ---------------------------------------------------------


@dataclass(slots=True)
class StopInfo:
    """Why a session's run loop handed control back to the client.

    Wire-stable: every field is plain JSON data (frames are serialized
    with :meth:`~repro.core.frames.Frame.to_dict`), so the same record is
    returned by a local session and shipped by the hub protocol.
    """

    reason: str                      #: breakpoint | watch | done | detached | error
    time: int = 0
    filename: str | None = None
    line: int | None = None
    column: int | None = None
    frames: list = field(default_factory=list)
    watch: dict | None = None
    cycles: int = 0                  #: cycles completed (done/detached)
    exit_code: int | None = None     #: Stop() exit code, when finished
    message: str | None = None       #: error text (reason == "error")

    @property
    def stopped(self) -> bool:
        """True when the session is paused at a hit and accepts cont/step."""
        return self.reason in ("breakpoint", "watch")

    @property
    def location(self) -> str:
        return f"{self.filename}:{self.line}"

    def to_wire(self) -> dict:
        rec = {"reason": self.reason, "time": self.time, "cycles": self.cycles}
        if self.filename is not None:
            rec.update(
                filename=self.filename, line=self.line, column=self.column
            )
        if self.frames:
            rec["frames"] = self.frames
        if self.watch is not None:
            rec["watch"] = self.watch
        if self.exit_code is not None:
            rec["exit_code"] = self.exit_code
        if self.message is not None:
            rec["message"] = self.message
        return rec

    @classmethod
    def from_wire(cls, rec: dict) -> StopInfo:
        return cls(
            reason=rec["reason"],
            time=rec.get("time", 0),
            filename=rec.get("filename"),
            line=rec.get("line"),
            column=rec.get("column"),
            frames=rec.get("frames", []),
            watch=rec.get("watch"),
            cycles=rec.get("cycles", 0),
            exit_code=rec.get("exit_code"),
            message=rec.get("message"),
        )

    @classmethod
    def from_hit(cls, hit: HitGroup) -> StopInfo:
        reason = "watch" if hit.watch is not None else "breakpoint"
        rec = hit.to_record()
        return cls(
            reason=reason,
            time=hit.time,
            filename=hit.filename,
            line=hit.line,
            column=hit.column,
            frames=rec.get("frames", []),
            watch=rec.get("watch"),
        )


# -- the protocol -----------------------------------------------------------


class SessionHandle(ABC):
    """Everything a debugger front end may do to a debug session.

    Control methods (:meth:`run`, :meth:`cont`, :meth:`step`,
    :meth:`reverse_step`, :meth:`reverse_cont`, :meth:`detach`) block
    until the session stops again and return a :class:`StopInfo`.
    Data methods are legal while the session is idle or stopped at a hit;
    calling one while the run loop is executing raises
    :class:`SessionError`.
    """

    # -- identity / capabilities ---------------------------------------

    @abstractmethod
    def describe(self) -> dict:
        """Static facts: kind (live/replay), top name, capabilities."""

    @property
    @abstractmethod
    def can_set_time(self) -> bool: ...

    @property
    @abstractmethod
    def can_set_value(self) -> bool: ...

    # -- values ---------------------------------------------------------

    @abstractmethod
    def peek(self, path: str) -> int:
        """Read a signal by full hierarchical or top-local name."""

    @abstractmethod
    def poke(self, path: str, value: int) -> None:
        """Force a signal value (live sessions only)."""

    @abstractmethod
    def evaluate(self, expr: str, breakpoint_id: int | None = None) -> int:
        """Evaluate an expression.  With ``breakpoint_id``, resolve names
        in that breakpoint's frame scope (the id comes from a serialized
        stop frame); otherwise use the stopped frame's scope when stopped,
        or the design top scope."""

    # -- time / history --------------------------------------------------

    @abstractmethod
    def get_time(self) -> int: ...

    @abstractmethod
    def set_time(self, time: int) -> None: ...

    @abstractmethod
    def timeline_info(self) -> dict | None:
        """Retained-window summary (``describe``/``time``), or None when
        the backend keeps no history."""

    @abstractmethod
    def history(self, name: str, limit: int = 16) -> dict:
        """Last ``limit`` retained values of a signal:
        ``{"path", "total", "samples": [(cycle, value), ...]}``."""

    # -- breakpoints -----------------------------------------------------

    @abstractmethod
    def add_breakpoint(
        self, filename: str, line: int, condition: str | None = None
    ) -> list[dict]: ...

    @abstractmethod
    def add_watchpoint(
        self, name: str, condition: str | None = None
    ) -> dict: ...

    @abstractmethod
    def remove_breakpoint(self, bp_id: int) -> bool: ...

    @abstractmethod
    def clear_breakpoints(self) -> None: ...

    @abstractmethod
    def ignore(self, bp_id: int, count: int) -> bool:
        """Skip the next ``count`` hits of a breakpoint."""

    @abstractmethod
    def breakpoints(self) -> list[dict]: ...

    @abstractmethod
    def watchpoints(self) -> list[dict]: ...

    # -- control ---------------------------------------------------------

    @abstractmethod
    def run(self, cycles: int) -> StopInfo:
        """Start the session's run loop for up to ``cycles`` cycles and
        block until the first stop (hit, completion, or error)."""

    @abstractmethod
    def cont(self) -> StopInfo: ...

    @abstractmethod
    def step(self) -> StopInfo: ...

    @abstractmethod
    def reverse_step(self) -> StopInfo: ...

    @abstractmethod
    def reverse_cont(self) -> StopInfo: ...

    @abstractmethod
    def pause(self) -> None:
        """Ask a running session to stop at the next opportunity (async);
        the blocked control call returns the resulting StopInfo."""

    @abstractmethod
    def detach(self) -> StopInfo | None:
        """Stop debugging: abort the run loop (if any) and release the
        runtime's hooks."""

    @abstractmethod
    def reset(self, cycles: int = 1) -> None:
        """Assert reset for ``cycles`` cycles (live sessions only)."""

    # -- introspection ----------------------------------------------------

    @abstractmethod
    def files(self) -> list[str]: ...

    @abstractmethod
    def warnings(self) -> list[str]: ...

    @abstractmethod
    def resolve_file(self, filename: str) -> str | None: ...

    @abstractmethod
    def stats(self) -> dict:
        """Execution counters (live sessions; replay has none)."""

    @abstractmethod
    def metrics(self) -> dict | None:
        """The obs metric catalog snapshot, or None when obs is off."""

    @abstractmethod
    def lint(self, severity: str | None = None) -> dict:
        """Static analysis of the attached circuit:
        ``{"count", "text"}``."""

    @abstractmethod
    def state_digest(self) -> str: ...

    @abstractmethod
    def shard_sweep(
        self,
        shards: int,
        cycles: int,
        seed_base: int = 0,
        retries: int | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Fan this session's breakpoints out to a parallel seed sweep
        and return the aggregated report summary."""


class _SessionAbort(Exception):
    """Raised inside the run loop's stimulus hook to abort a detach."""


class LocalSession(SessionHandle):
    """A :class:`SessionHandle` over an in-process :class:`Runtime`.

    Data operations delegate straight to the runtime and its backend; the
    run-control surface owns a pump thread driving
    ``sim.run_cycles(...)``.  When a breakpoint hits, the runtime's
    synchronous ``on_hit`` callback serializes the stop, parks the pump on
    a command queue (exactly the blocking-VPI-callback shape of
    ``core/protocol.py``), and the client-side control call returns the
    :class:`StopInfo`.  While stopped, data operations from the client
    thread see stable, settled state — gdb at a ptrace stop.

    Front ends that keep the classic passive shape (the embedding test
    drives ``sim.step`` and owns ``runtime.on_hit``) can use a
    LocalSession purely for data operations: the pump is only installed
    by the first :meth:`run` call.
    """

    #: safety net so an orphaned control call cannot block forever
    stop_timeout = 300.0

    def __init__(self, runtime: Runtime, stimulus=None, name: str = "local"):
        self.runtime = runtime
        self.name = name
        self._sim = runtime.sim
        self._stimulus = stimulus
        self._stops: queue.Queue[StopInfo] = queue.Queue()
        self._cmds: queue.Queue[Command] = queue.Queue()
        self._ctl = threading.RLock()
        self._state = "idle"          # idle | running | stopped
        self._thread: threading.Thread | None = None
        self._abort = False
        self._stop_bp = None          # BreakpointRec of the stopped frame
        self.last_stop: StopInfo | None = None

    # -- identity / capabilities ---------------------------------------

    def describe(self) -> dict:
        sim = self._sim
        return {
            "kind": "replay" if sim.is_replay else "live",
            "top": self.runtime.symtable.top_name(),
            "time": sim.get_time(),
            "can_set_time": sim.can_set_time,
            "can_set_value": sim.can_set_value,
            "state": self._state,
        }

    @property
    def can_set_time(self) -> bool:
        return self._sim.can_set_time

    @property
    def can_set_value(self) -> bool:
        return self._sim.can_set_value

    # -- values ---------------------------------------------------------

    def _check_data_ok(self) -> None:
        if self._state == "running":
            raise SessionError(
                "session is running; pause it before inspecting state"
            )

    def peek(self, path: str) -> int:
        self._check_data_ok()
        sim = self._sim
        try:
            return sim.get_value(path)
        except SimulatorError:
            # Top-local name: qualify against the hierarchy root.
            return sim.get_value(f"{sim.hierarchy().path}.{path}")

    def poke(self, path: str, value: int) -> None:
        self._check_data_ok()
        sim = self._sim
        # The live simulator's poke() accepts top-local input names (the
        # stimulus surface); set_value is the strict full-path interface
        # every backend has.
        poke = getattr(sim, "poke", None)
        if poke is not None:
            poke(path, value)
        else:
            sim.set_value(path, value)

    def evaluate(self, expr: str, breakpoint_id: int | None = None) -> int:
        self._check_data_ok()
        bp = self._stop_bp
        if breakpoint_id is not None:
            bp = self.runtime.symtable.breakpoint(int(breakpoint_id))
        return self.runtime.evaluate(expr, bp)

    # -- time / history --------------------------------------------------

    def get_time(self) -> int:
        return self._sim.get_time()

    def set_time(self, time: int) -> None:
        self._check_data_ok()
        self._sim.set_time(time)

    def timeline_info(self) -> dict | None:
        timeline = self._sim.timeline
        if timeline is None:
            return None
        return {
            "describe": timeline.describe(),
            "time": self._sim.get_time(),
            "entries": len(timeline),
        }

    def history(self, name: str, limit: int = 16) -> dict:
        self._check_data_ok()
        sim = self._sim
        timeline = sim.timeline
        if timeline is None:
            raise SessionError(
                "no timeline: this backend keeps no history (construct the "
                "simulator with snapshots=N or snapshot_bytes=N)"
            )
        path = self.runtime._resolve_watch_path(name, None)
        # Bound the walk up front: each sample is one set_time hop, and a
        # replayed trace can retain tens of thousands of cycles.
        times = timeline.times()
        start = times[-limit] if 0 < limit < len(times) else None
        series = sim.history(path, start=start)
        shown = series[-limit:] if limit > 0 else series
        return {
            "path": path,
            "total": len(timeline),  # the walk may have retained "now" too
            "samples": [list(s) for s in shown],
        }

    # -- breakpoints -----------------------------------------------------

    def add_breakpoint(
        self, filename: str, line: int, condition: str | None = None
    ) -> list[dict]:
        bps = self.runtime.add_breakpoint(filename, line, condition=condition)
        return [
            {
                "id": bp.rec.id,
                "instance": bp.rec.instance_name,
                "filename": bp.rec.filename,
                "line": bp.rec.line,
                "enable": bp.rec.enable_src or bp.rec.enable or "always",
                "condition": bp.condition_src,
            }
            for bp in bps
        ]

    def add_watchpoint(self, name: str, condition: str | None = None) -> dict:
        wp = self.runtime.add_watchpoint(name, condition=condition)
        return {"id": wp.id, "path": wp.path, "label": wp.label}

    def remove_breakpoint(self, bp_id: int) -> bool:
        return self.runtime.remove_breakpoint(bp_id)

    def clear_breakpoints(self) -> None:
        self.runtime.clear_breakpoints()

    def ignore(self, bp_id: int, count: int) -> bool:
        bp = self.runtime.scheduler.inserted.get(bp_id)
        if bp is None:
            return False
        bp.ignore_count = count
        return True

    def breakpoints(self) -> list[dict]:
        return [
            {
                "id": bp.rec.id,
                "filename": bp.rec.filename,
                "line": bp.rec.line,
                "instance": bp.rec.instance_name,
                "condition": bp.condition_src,
                "hits": bp.hit_count,
            }
            for bp in self.runtime.list_breakpoints()
        ]

    def watchpoints(self) -> list[dict]:
        return [
            {"id": wp.id, "path": wp.path, "label": wp.label,
             "hits": wp.hit_count}
            for wp in self.runtime.watchpoints
        ]

    # -- control ---------------------------------------------------------

    def run(self, cycles: int) -> StopInfo:
        with self._ctl:
            if self._state != "idle":
                raise SessionError(f"cannot run: session is {self._state}")
            if getattr(self._sim, "finished", False):
                return self._record(
                    StopInfo(
                        reason="done", time=self._sim.get_time(),
                        exit_code=getattr(self._sim, "exit_code", None),
                    )
                )
            self._abort = False
            self._stops = queue.Queue()
            self._cmds = queue.Queue()
            self.runtime.on_hit = self._on_hit
            self.runtime.attach()
            self._state = "running"
            self._thread = threading.Thread(
                target=self._run_loop, args=(int(cycles),), daemon=True,
                name=f"repro-session-{self.name}",
            )
            self._thread.start()
            return self._wait_stop()

    def _resume(self, cmd: Command) -> StopInfo:
        with self._ctl:
            if self._state != "stopped":
                raise SessionError(
                    f"cannot resume: session is {self._state}"
                )
            self._state = "running"
            self._cmds.put(cmd)
            return self._wait_stop()

    def cont(self) -> StopInfo:
        return self._resume(CONTINUE)

    def step(self) -> StopInfo:
        return self._resume(STEP)

    def reverse_step(self) -> StopInfo:
        return self._resume(REVERSE_STEP)

    def reverse_cont(self) -> StopInfo:
        return self._resume(REVERSE_CONTINUE)

    def pause(self) -> None:
        # Async by design (protocol.py's "pause" shape): the blocked
        # control call collects the resulting StopInfo.
        if self._state == "running":
            self.runtime.request_pause()

    def detach(self) -> StopInfo | None:
        with self._ctl:
            self._abort = True
            if self._state == "stopped":
                self._state = "running"
                self._cmds.put(DETACH)
                out = self._wait_stop()
            elif self._state == "running":
                out = self._wait_stop()
            else:
                out = None
            if self._thread is not None:
                self._thread.join(timeout=self.stop_timeout)
                self._thread = None
            self.runtime.detach()
            return out

    def reset(self, cycles: int = 1) -> None:
        self._check_data_ok()
        reset = getattr(self._sim, "reset", None)
        if reset is None:
            raise SessionError("reset requires a live Simulator backend")
        reset(cycles)

    # -- the pump ---------------------------------------------------------

    def _wait_stop(self) -> StopInfo:
        try:
            info = self._stops.get(timeout=self.stop_timeout)
        except queue.Empty:
            raise SessionError(
                f"session produced no stop within {self.stop_timeout}s"
            ) from None
        return self._record(info)

    def _record(self, info: StopInfo) -> StopInfo:
        self.last_stop = info
        return info

    def _on_hit(self, hit: HitGroup) -> Command:
        info = StopInfo.from_hit(hit)
        self._stop_bp = hit.frames[0].breakpoint if hit.frames else None
        self._state = "stopped"
        self._stops.put(info)
        cmd = self._cmds.get()  # parked: the client owns the session now
        self._stop_bp = None
        self._state = "running"
        return cmd

    def _stimulus_hook(self, sim, cycle: int) -> None:
        if self._abort:
            raise _SessionAbort
        if self._stimulus is not None:
            self._stimulus(sim, cycle)

    def _run_loop(self, cycles: int) -> None:
        sim = self._sim
        done = 0
        try:
            done = sim.run_cycles(cycles, stimulus=self._stimulus_hook)
            info = StopInfo(
                reason="done",
                time=sim.get_time(),
                cycles=done,
                exit_code=getattr(sim, "exit_code", None),
            )
        except _SessionAbort:
            info = StopInfo(
                reason="detached", time=sim.get_time(), cycles=done
            )
        except Exception as exc:  # noqa: BLE001 - session boundary
            info = StopInfo(
                reason="error",
                time=sim.get_time(),
                message=f"{type(exc).__name__}: {exc}",
            )
        self._state = "idle"
        self._stop_bp = None
        self._stops.put(info)

    # -- introspection ----------------------------------------------------

    def files(self) -> list[str]:
        return list(self.runtime.symtable.filenames())

    def warnings(self) -> list[str]:
        return list(self.runtime.warnings)

    def resolve_file(self, filename: str) -> str | None:
        return self.runtime.resolve_filename(filename)

    def stats(self) -> dict:
        stats_fn = getattr(self._sim, "stats", None)
        if stats_fn is None:
            raise SessionError(
                "stats: no counters on this backend (trace replay session)"
            )
        return stats_fn()

    def metrics(self) -> dict | None:
        obs = getattr(self._sim, "obs", None)
        if obs is None or obs.metrics is None:
            return None
        return obs.metrics.snapshot()

    def lint(self, severity: str | None = None) -> dict:
        from ..lint import Severity, format_diagnostics, lint_circuit

        design = getattr(self._sim, "design", None)
        circuit = getattr(design, "circuit", None)
        if circuit is None:
            raise SessionError(
                "lint: no circuit attached (trace replay session)"
            )
        diags = lint_circuit(circuit, form="low")
        if severity:
            threshold = Severity.parse(severity)
            diags = [d for d in diags if d.severity >= threshold]
        return {
            "count": len(diags),
            "text": format_diagnostics(diags) if diags else "",
        }

    def state_digest(self) -> str:
        self._check_data_ok()
        digest = getattr(self._sim, "state_digest", None)
        if digest is None:
            raise SessionError(
                "state_digest requires a live Simulator backend"
            )
        return digest()

    def shard_sweep(
        self,
        shards: int,
        cycles: int,
        seed_base: int = 0,
        retries: int | None = None,
        deadline: float | None = None,
    ) -> dict:
        from ..shard import (
            BreakpointSpec,
            RetryPolicy,
            ShardSession,
            WatchSpec,
            make_sweep,
        )

        self._check_data_ok()
        design = getattr(self._sim, "design", None)
        circuit = getattr(design, "circuit", None)
        if circuit is None:
            raise SessionError("shard requires a live Simulator backend")
        seen: set[tuple] = set()
        breakpoints = []
        for bp in self.runtime.list_breakpoints():
            key = (bp.rec.filename, bp.rec.line, bp.condition_src)
            if key not in seen:
                seen.add(key)
                breakpoints.append(
                    BreakpointSpec(
                        bp.rec.filename, bp.rec.line,
                        condition=bp.condition_src,
                    )
                )
        watchpoints = [
            WatchSpec(wp.label, condition=wp.condition_src)
            for wp in self.runtime.watchpoints
        ]
        if not breakpoints and not watchpoints:
            raise SessionError(
                "no breakpoints to sweep; insert some first (b/watch)"
            )
        # Reuse the session's already-compiled design: forked workers
        # inherit it copy-on-write, and in-process (inline) shards can
        # share it too now that printf routing is per-stepping-simulator.
        with ShardSession(
            circuit, self.runtime.symtable, compiled=design
        ) as session:
            report = session.run(
                make_sweep(
                    shards, cycles, seed_base=seed_base,
                    breakpoints=breakpoints, watchpoints=watchpoints,
                ),
                retry=(
                    RetryPolicy(max_attempts=retries)
                    if retries is not None else None
                ),
                deadline=deadline,
            )
        return {
            "summary": report.summary(),
            "ok": report.ok,
            "shards": shards,
        }
