"""The debug hub: compile once, debug many (ROADMAP's debug-service shape).

:class:`DebugHub` elaborates, lints, and compiles one design and then
multiplexes any number of concurrent debug sessions over the hot
:class:`~repro.sim.compiler.CompiledDesign`.  The expensive work — the
lint gate, code generation, cone analysis, symbol table extraction —
happens exactly once at hub startup; attaching a session only allocates a
fresh value store and runtime, which is why the Nth engineer's
time-to-first-breakpoint is dominated by their breakpoint, not by the
compiler (``benchmarks/bench_hub.py``).

Transport: newline-delimited JSON over TCP, framed with the same
``__type__``-tagged codec as the shard event wire and the symbol table
RPC (:mod:`repro.shard.wire`) — one request object per line, one
response per line, matched by ``id``::

    -> {"id": 1, "method": "attach", "params": {"seed": 7}}
    <- {"id": 1, "result": {"sid": 1, "kind": "live", ...}}
    -> {"id": 2, "method": "s.run", "params": {"cycles": 500}}
    <- {"id": 2, "result": {"reason": "breakpoint", "time": 12, ...}}

``s.*`` methods address the session bound to the connection (one
``attach`` per connection; re-attach to a surviving session by ``sid``).
Hub-level methods: ``hello``, ``attach``, ``detach``, ``list_sessions``.

The asyncio loop only shuffles frames; every session operation runs in a
worker thread (``asyncio.to_thread``), so a session blocked at a
breakpoint never stalls the other connections.  Sessions left idle past
``idle_ttl`` are evicted by a background sweep (their simulator state is
dropped; the design stays hot).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import tempfile
import threading
import time

from ..obs import make_obs
from ..shard.wire import decode_deep, encode_deep
from ..sim.compiler import compile_design
from ..symtable.writer import write_symbol_table
from .api import SessionOptions, resolve_session_options
from .session import DebugSession

PROTOCOL_VERSION = 1


class HubError(Exception):
    """Raised on hub-level failures (bad attach, unknown method...)."""


class DebugHub:
    """Serve one compiled design to many concurrent debug sessions.

    Args:
        design: a compiled :class:`repro.Design` (``repro.compile(...)``) —
            the hub needs its debug info to write the symbol table.
        options: default :class:`SessionOptions` for every session this
            hub creates.  ``options.strict`` also configures the hub's
            compile-time lint gate, which — unlike a standalone
            ``Simulator`` — defaults to ``"error"``: a design served to
            many engineers should not compile with known-broken constructs.
        host/port: bind address (port 0 picks a free port).
        idle_ttl: evict sessions idle longer than this many seconds
            (None disables eviction).
        obs: hub-side observability (``repro.obs``): sessions-active
            gauge, attach count/latency, per-session cycle counter.
        legacy session keywords (``snapshots=``, ``store=``, ...) are
            accepted like ``Simulator``'s, with the same deprecation.
    """

    def __init__(
        self,
        design,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_ttl: float | None = None,
        obs=None,
        options: SessionOptions | None = None,
        **legacy,
    ):
        options = resolve_session_options(options, legacy, "DebugHub")
        low = getattr(design, "low", None)
        if low is None:
            raise HubError(
                "DebugHub needs a compiled repro.Design (repro.compile(...))"
            )
        self.design_name = design.name
        self.circuit = low
        self.host = host
        self.port = port
        self.idle_ttl = idle_ttl
        self.obs = make_obs(obs, proc="hub")
        # Serving a design to many engineers: lint it like a release
        # artifact.  strict=None (the SessionOptions default) hardens to
        # "error" here; an explicit strict (e.g. "warn", "off") wins.
        from ..lint.engine import GATE_OFF, gate_circuit, resolve_gate

        strict = options.strict if options.strict is not None else "error"
        mode = resolve_gate(strict)
        if mode != GATE_OFF:
            gate_circuit(self.circuit, mode, form="low",
                         design=self.design_name)
        # Sessions must not re-gate what the hub just vetted (and their
        # simulators reuse `compiled` anyway, which skips the gate).
        self.options = dataclasses.replace(options, strict="off")
        with self.obs.span("hub.compile", design=self.design_name):
            self.compiled = compile_design(self.circuit, None)
            # One on-disk symbol table; every session opens its own
            # sqlite connection to it (connections don't cross threads).
            fd, self._symtable_path = tempfile.mkstemp(
                prefix=f"hgdb-hub-{self.design_name}-", suffix=".db"
            )
            os.close(fd)
            write_symbol_table(design, self._symtable_path).close()

        self._sessions: dict[int, DebugSession] = {}
        self._next_sid = 1
        self._lock = threading.Lock()
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._closed = False
        if self.obs.metrics is not None:
            self._m_active = self.obs.metrics.gauge(
                "hub_sessions_active", "debug sessions currently attached"
            )
            self._m_attaches = self.obs.metrics.counter(
                "hub_attaches_total", "sessions attached over the hub lifetime"
            )
            self._m_attach_s = self.obs.metrics.histogram(
                "hub_attach_seconds", "session construction latency"
            )
            self._m_requests = self.obs.metrics.counter(
                "hub_requests_total", "wire requests served"
            )
        else:
            self._m_active = self._m_attaches = None
            self._m_attach_s = self._m_requests = None

    # -- session management ------------------------------------------------

    def attach(self, seed: int | None = None, name: str | None = None,
               snapshots: int | None = None) -> DebugSession:
        """Create (and register) one new session over the hot design."""
        t0 = time.monotonic()
        options = self.options
        if snapshots is not None:
            options = dataclasses.replace(options, snapshots=int(snapshots))
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
        session = DebugSession(
            sid,
            self.circuit,
            self.compiled,
            self._symtable_path,
            options,
            seed=seed,
            name=name,
            obs=self.obs,
        )
        with self._lock:
            self._sessions[sid] = session
        if self._m_attaches is not None:
            self._m_attaches.inc()
            self._m_attach_s.observe(time.monotonic() - t0)
            self._m_active.set(len(self._sessions))
        return session

    def get_session(self, sid: int) -> DebugSession:
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise HubError(f"no session {sid}")
        return session

    def detach(self, sid: int) -> bool:
        """Close and drop one session.  Idempotent."""
        with self._lock:
            session = self._sessions.pop(sid, None)
        if session is None:
            return False
        session.close()
        if self._m_active is not None:
            self._m_active.set(len(self._sessions))
        return True

    def list_sessions(self) -> list[dict]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [
            {
                "sid": s.sid,
                "name": s.name,
                "state": s.state,
                "seed": s.seed,
                "time": s.session.get_time(),
                "idle_for": round(s.idle_for, 3),
                "cycles_run": s.cycles_run,
            }
            for s in sessions
        ]

    @property
    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def evict_idle(self, ttl: float | None = None) -> list[int]:
        """Drop every session idle longer than ``ttl`` (defaults to the
        hub's ``idle_ttl``).  Running sessions are never evicted — a long
        ``run`` keeps a session busy, not idle.  Returns evicted sids."""
        ttl = self.idle_ttl if ttl is None else ttl
        if ttl is None:
            return []
        with self._lock:
            stale = [
                s.sid
                for s in self._sessions.values()
                if s.idle_for > ttl and s.state != "running"
            ]
        return [sid for sid in stale if self.detach(sid)]

    # -- wire protocol -----------------------------------------------------

    def _hello(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "design": self.design_name,
            "top": self.compiled.hierarchy.path,
            "sessions": self.session_count,
        }

    def _handle_request(self, bound: list, method: str, params: dict):
        """Serve one request (worker thread).  ``bound`` is the
        connection's one-element session-binding cell."""
        if self._m_requests is not None:
            self._m_requests.inc()
        if method == "hello":
            return self._hello()
        if method == "attach":
            sid = params.pop("sid", None)
            if sid is not None:
                session = self.get_session(int(sid))
            else:
                session = self.attach(**params)
            bound[0] = session
            out = session.invoke("describe", {})
            out.update(sid=session.sid, name=session.name)
            return out
        if method == "detach":
            session, bound[0] = bound[0], None
            if session is None:
                return {"detached": False}
            return {"detached": self.detach(session.sid)}
        if method == "list_sessions":
            return self.list_sessions()
        if method.startswith("s."):
            session = bound[0]
            if session is None:
                raise HubError("no session bound; send attach first")
            return session.invoke(method[2:], params)
        raise HubError(f"unknown hub method {method!r}")

    async def _serve_connection(self, reader, writer) -> None:
        bound: list = [None]  # the connection's attached session
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    req = decode_deep(json.loads(line))
                    req_id = req.get("id")
                    result = await asyncio.to_thread(
                        self._handle_request,
                        bound,
                        req.get("method", ""),
                        req.get("params") or {},
                    )
                    resp = {"id": req_id, "result": result}
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    resp = {
                        "id": req.get("id") if isinstance(req, dict) else None,
                        "error": f"{exc}",
                        "kind": type(exc).__name__,
                    }
                writer.write(json.dumps(encode_deep(resp)).encode() + b"\n")
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # hub shutdown while the connection was idle
        finally:
            # The session survives a dropped connection (re-attach by
            # sid); the idle sweeper reaps it if nobody comes back.
            writer.close()

    async def _evict_loop(self) -> None:
        while True:
            await asyncio.sleep(max(0.05, (self.idle_ttl or 1.0) / 4))
            await asyncio.to_thread(self.evict_idle)

    async def start(self) -> tuple[str, int]:
        """Bind and start serving on the running event loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.idle_ttl is not None:
            self._evictor = self._loop.create_task(self._evict_loop())
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- threaded embedding ------------------------------------------------

    def serve_background(self) -> tuple[str, int]:
        """Run the hub on a dedicated event-loop thread; returns the bound
        address.  This is how tests, benchmarks, and in-process tools host
        a hub next to their own code."""
        started = threading.Event()

        def main() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)

            async def run() -> None:
                await self.start()
                started.set()
                async with self._server:
                    try:
                        await self._server.serve_forever()
                    except asyncio.CancelledError:
                        pass

            try:
                self._loop.run_until_complete(run())
            finally:
                self._loop.close()

        self._thread = threading.Thread(
            target=main, daemon=True, name="repro-hub"
        )
        self._thread.start()
        if not started.wait(timeout=30):
            raise HubError("hub failed to start within 30s")
        return (self.host, self.port)

    def close(self) -> None:
        """Stop serving, close every session, drop the symbol table."""
        if self._closed:
            return
        self._closed = True
        loop, server = self._loop, self._server
        if loop is not None and server is not None and loop.is_running():
            def stop() -> None:
                server.close()
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            loop.call_soon_threadsafe(stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        for sid in list(self._sessions):
            self.detach(sid)
        try:
            os.unlink(self._symtable_path)
        except OSError:
            pass

    def __enter__(self) -> DebugHub:
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
