"""Client side of the hub wire: the same session API, over a socket.

:class:`HubClient` owns one TCP connection to a :class:`DebugHub`;
:class:`HubSession` implements :class:`~repro.hub.api.SessionHandle` by
forwarding every method as one ``s.*`` request, so the console and DAP
front ends drive a remote hub session with the exact code paths they use
against an in-process :class:`~repro.hub.api.LocalSession`.
"""

from __future__ import annotations

import json
import socket

from ..shard.wire import decode_deep, encode_deep
from .api import SessionError, SessionHandle, StopInfo


class HubClient:
    """Blocking newline-JSON RPC client for one hub connection."""

    def __init__(self, host: str, port: int, timeout: float = 300.0):
        self.address = (host, int(port))
        self._sock = socket.create_connection(self.address, timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 1

    def call(self, method: str, params: dict | None = None):
        req_id, self._next_id = self._next_id, self._next_id + 1
        req = {"id": req_id, "method": method, "params": params or {}}
        self._sock.sendall(json.dumps(encode_deep(req)).encode() + b"\n")
        line = self._file.readline()
        if not line:
            raise SessionError("hub connection closed")
        resp = decode_deep(json.loads(line))
        if resp.get("id") != req_id:
            raise SessionError(
                f"hub response id mismatch: {resp.get('id')} != {req_id}"
            )
        if "error" in resp:
            raise SessionError(resp["error"])
        return resp.get("result")

    def hello(self) -> dict:
        return self.call("hello")

    def attach(
        self,
        seed: int | None = None,
        name: str | None = None,
        snapshots: int | None = None,
        sid: int | None = None,
    ) -> "HubSession":
        """Create a session on the hub (or re-attach to ``sid``) and bind
        it to this connection."""
        params = {}
        if seed is not None:
            params["seed"] = seed
        if name is not None:
            params["name"] = name
        if snapshots is not None:
            params["snapshots"] = snapshots
        if sid is not None:
            params["sid"] = sid
        info = self.call("attach", params)
        return HubSession(self, info)

    def list_sessions(self) -> list[dict]:
        return self.call("list_sessions")

    def detach(self) -> bool:
        return bool(self.call("detach").get("detached"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "HubClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class HubSession(SessionHandle):
    """A remote hub session, driven through the unified session API."""

    def __init__(self, client: HubClient, info: dict):
        self._client = client
        self.sid = info.get("sid")
        self.name = info.get("name")
        self._info = info

    # identity / capabilities -- the attach-time snapshot answers the
    # static questions without a round trip; describe() always re-asks.

    def describe(self) -> dict:
        self._info = self._client.call("s.describe", {})
        return self._info

    @property
    def can_set_time(self) -> bool:
        return bool(self._info.get("can_set_time"))

    @property
    def can_set_value(self) -> bool:
        return bool(self._info.get("can_set_value"))

    # values

    def peek(self, path: str) -> int:
        return self._client.call("s.peek", {"path": path})

    def poke(self, path: str, value: int) -> None:
        self._client.call("s.poke", {"path": path, "value": value})

    def evaluate(self, expr: str, breakpoint_id: int | None = None) -> int:
        params = {"expr": expr}
        if breakpoint_id is not None:
            params["breakpoint_id"] = breakpoint_id
        return self._client.call("s.evaluate", params)

    # time / history

    def get_time(self) -> int:
        return self._client.call("s.get_time", {})

    def set_time(self, time: int) -> None:
        self._client.call("s.set_time", {"time": time})

    def timeline_info(self) -> dict | None:
        return self._client.call("s.timeline_info", {})

    def history(self, name: str, limit: int = 16) -> dict:
        return self._client.call("s.history", {"name": name, "limit": limit})

    # breakpoints

    def add_breakpoint(self, filename, line, condition=None) -> list[dict]:
        return self._client.call(
            "s.add_breakpoint",
            {"filename": filename, "line": line, "condition": condition},
        )

    def add_watchpoint(self, name, condition=None) -> dict:
        return self._client.call(
            "s.add_watchpoint", {"name": name, "condition": condition}
        )

    def remove_breakpoint(self, bp_id: int) -> bool:
        return self._client.call("s.remove_breakpoint", {"bp_id": bp_id})

    def clear_breakpoints(self) -> None:
        self._client.call("s.clear_breakpoints", {})

    def ignore(self, bp_id: int, count: int) -> bool:
        return self._client.call(
            "s.ignore", {"bp_id": bp_id, "count": count}
        )

    def breakpoints(self) -> list[dict]:
        return self._client.call("s.breakpoints", {})

    def watchpoints(self) -> list[dict]:
        return self._client.call("s.watchpoints", {})

    # control -- each call blocks until the remote session stops again

    def run(self, cycles: int) -> StopInfo:
        return StopInfo.from_wire(
            self._client.call("s.run", {"cycles": cycles})
        )

    def cont(self) -> StopInfo:
        return StopInfo.from_wire(self._client.call("s.cont", {}))

    def step(self) -> StopInfo:
        return StopInfo.from_wire(self._client.call("s.step", {}))

    def reverse_step(self) -> StopInfo:
        return StopInfo.from_wire(self._client.call("s.reverse_step", {}))

    def reverse_cont(self) -> StopInfo:
        return StopInfo.from_wire(self._client.call("s.reverse_cont", {}))

    def pause(self) -> None:
        self._client.call("s.pause", {})

    def detach(self) -> StopInfo | None:
        result = self._client.call("s.detach", {})
        self._client.call("detach", {})
        return StopInfo.from_wire(result) if result else None

    def reset(self, cycles: int = 1) -> None:
        self._client.call("s.reset", {"cycles": cycles})

    # introspection

    def files(self) -> list[str]:
        return self._client.call("s.files", {})

    def warnings(self) -> list[str]:
        return self._client.call("s.warnings", {})

    def resolve_file(self, filename: str) -> str | None:
        return self._client.call("s.resolve_file", {"filename": filename})

    def stats(self) -> dict:
        return self._client.call("s.stats", {})

    def metrics(self) -> dict | None:
        return self._client.call("s.metrics", {})

    def lint(self, severity: str | None = None) -> dict:
        return self._client.call("s.lint", {"severity": severity})

    def state_digest(self) -> str:
        return self._client.call("s.state_digest", {})

    def shard_sweep(self, shards, cycles, seed_base=0, retries=None,
                    deadline=None) -> dict:
        return self._client.call(
            "s.shard_sweep",
            {
                "shards": shards,
                "cycles": cycles,
                "seed_base": seed_base,
                "retries": retries,
                "deadline": deadline,
            },
        )
