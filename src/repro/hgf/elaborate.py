"""Elaboration: convert constructed Module objects into a High-form Circuit.

Walks the instance tree from the top module, assigns unique IR module names,
converts the mutable builder statements into immutable IR blocks, and emits
annotations: ``NameHint`` for versioned ``var`` bindings and ``GeneratorVar``
for the generator object's public attributes (parameters become constant
generator variables, signal attributes become RTL-backed ones — paper
Fig. 4A shows both kinds in the IDE's variable panel).
"""

from __future__ import annotations

from ..ir.stmt import (
    Block,
    Circuit,
    Conditionally,
    DefInstance,
    GeneratorVar,
    ModuleIR,
    NameHint,
    Stmt,
)
from .module import HgfError, Module, Var, _When
from .value import Value


def _convert_body(stmts: list) -> Block:
    out: list[Stmt] = []
    for s in stmts:
        if isinstance(s, _When):
            out.append(
                Conditionally(
                    s.pred,
                    _convert_body(s.conseq),
                    _convert_body(s.alt),
                    s.info,
                )
            )
        else:
            out.append(s)
    return Block(tuple(out))


def _patch_instances(block: Block, mapping: dict[int, str]) -> Block:
    """Fill in the IR module name of each DefInstance."""
    out: list[Stmt] = []
    for s in block:
        if isinstance(s, DefInstance):
            out.append(DefInstance(s.name, mapping[id(s)], s.info))
        elif isinstance(s, Conditionally):
            out.append(
                Conditionally(
                    s.pred,
                    _patch_instances(s.conseq, mapping),
                    _patch_instances(s.alt, mapping),
                    s.info,
                )
            )
        else:
            out.append(s)
    return Block(tuple(out))


def _render_path(value: Value) -> str | None:
    """Render a Value's expression as a dotted path if it is one."""
    from ..ir.expr import Ref, SubField, SubIndex

    e = value.expr
    parts: list[str] = []
    while True:
        if isinstance(e, Ref):
            parts.append(e.name)
            break
        if isinstance(e, SubField):
            parts.append(e.name)
            e = e.expr
        elif isinstance(e, SubIndex):
            parts.append(f"[{e.index}]")
            e = e.expr
        else:
            return None
    parts.reverse()
    out = parts[0]
    for p in parts[1:]:
        out += p if p.startswith("[") else f".{p}"
    return out


def _generator_vars(module: Module, ir_name: str) -> list[GeneratorVar]:
    out: list[GeneratorVar] = []
    for attr, val in vars(module).items():
        if attr.startswith("_") or attr in ("clock", "reset"):
            continue
        if isinstance(val, bool):
            out.append(GeneratorVar(ir_name, attr, str(int(val)), False))
        elif isinstance(val, (int, float)):
            out.append(GeneratorVar(ir_name, attr, str(val), False))
        elif isinstance(val, str):
            out.append(GeneratorVar(ir_name, attr, val, False))
        elif isinstance(val, Value):
            path = _render_path(val)
            if path is not None:
                out.append(GeneratorVar(ir_name, attr, path, True))
        elif isinstance(val, Var):
            path = _render_path(val.value)
            if path is not None:
                out.append(GeneratorVar(ir_name, attr, path, True))
        # InstanceHandle / MemHandle are structure, not variables.
    return out


def elaborate(top: Module, name: str | None = None) -> Circuit:
    """Elaborate ``top`` (and every reachable child) into a Circuit."""
    if not isinstance(top, Module):
        raise HgfError("elaborate() requires a Module instance")

    # Assign unique IR names breadth-first so the top gets the plain name.
    modules_in_order: list[Module] = []
    names: dict[int, str] = {}
    used: set[str] = set()
    queue: list[Module] = [top]
    seen: set[int] = set()
    while queue:
        m = queue.pop(0)
        if id(m) in seen:
            raise HgfError("module instance used in more than one place")
        seen.add(id(m))
        base = type(m).__name__ if id(m) != id(top) or name is None else name
        candidate = base
        k = 1
        while candidate in used:
            candidate = f"{base}_{k}"
            k += 1
        used.add(candidate)
        names[id(m)] = candidate
        modules_in_order.append(m)
        for _inst_name, child in m._mb._children:
            queue.append(child)

    annotations: list = []
    ir_modules: dict[str, ModuleIR] = {}
    for m in modules_in_order:
        mb = m._mb
        mb._finalized = True
        ir_name = names[id(m)]
        # Map each DefInstance statement to its child's IR module name.
        inst_map: dict[int, str] = {}
        child_by_name = dict(mb._children)
        for s in _walk_raw(mb.stmts):
            if isinstance(s, DefInstance):
                inst_map[id(s)] = names[id(child_by_name[s.name])]
        body = _patch_instances(_convert_body(mb.stmts), inst_map)
        ir_modules[ir_name] = ModuleIR(ir_name, list(mb.ports), body)
        for rtl, source in mb._name_hints:
            annotations.append(NameHint(ir_name, rtl, source))
        annotations.extend(_generator_vars(m, ir_name))

    top_name = names[id(top)]
    circuit = Circuit(top_name, ir_modules, top_name, annotations)
    return circuit


def _walk_raw(stmts: list):
    for s in stmts:
        if isinstance(s, _When):
            yield from _walk_raw(s.conseq)
            yield from _walk_raw(s.alt)
        else:
            yield s
