"""Module construction: the generator frontend's core.

Users subclass :class:`Module` and describe hardware in ``__init__`` (after
calling ``super().__init__()``), exactly like Chisel describes hardware in a
module's constructor.  Python control flow *is* the generator language:
``for`` loops unroll, ``if`` selects at elaboration time, functions and
classes compose circuits.  Hardware conditionals use ``when``/``elsewhen``/
``otherwise`` blocks.

Every statement records its generator source location, and the ``var``
facility tracks versioned variable bindings — together these produce the
line table and SSA variable mapping of the paper (Listings 1/2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import expr as E
from ..ir.expr import Expr, Literal, MemRead, Ref
from ..ir.source import UNKNOWN, SourceInfo
from ..ir.stmt import (
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    Port,
    Printf,
    Stop,
)
from ..ir.types import (
    BundleType,
    ClockType,
    ResetType,
    SIntType,
    Type,
    UIntType,
)
from . import srcloc
from .value import Signal, Value


class HgfError(Exception):
    """Raised on misuse of the generator API."""


@dataclass
class _When:
    """Mutable when-block under construction.

    ``chain_neg`` accumulates the negated predicates of a
    when/elsewhen/... chain so nested `var` bindings see the correct path
    condition.
    """

    pred: Expr
    info: SourceInfo
    conseq: list = field(default_factory=list)
    alt: list = field(default_factory=list)
    chain_neg: Expr | None = None


class _WhenContext:
    def __init__(self, mb: ModuleBuilder, when: _When, body: list, term: Expr):
        self._mb = mb
        self._when = when
        self._body = body
        self._term = term

    def __enter__(self):
        self._mb._stack.append(self._body)
        self._mb._pred_stack.append(self._term)
        return self

    def __exit__(self, *exc):
        popped = self._mb._stack.pop()
        assert popped is self._body
        self._mb._pred_stack.pop()
        self._mb._last_when[len(self._mb._stack) - 1] = self._when
        return False


class ModuleBuilder:
    """Records declarations and statements for one module."""

    def __init__(self, owner: Module):
        self.owner = owner
        self.ports: list[Port] = [
            Port("clock", "input", ClockType()),
            Port("reset", "input", ResetType()),
        ]
        self.stmts: list = []
        self._stack: list[list] = [self.stmts]
        self._pred_stack: list[Expr] = []
        self._last_when: dict[int, _When] = {}
        self._names: set[str] = {"clock", "reset"}
        self._children: list[tuple[str, Module]] = []
        self._name_hints: list[tuple[str, str]] = []  # (rtl, source)
        self._finalized = False

    # -- naming ------------------------------------------------------------

    def _unique(self, name: str) -> str:
        if not name or not name.replace("_", "a").isalnum():
            raise HgfError(f"invalid signal name {name!r}")
        candidate = name
        k = 1
        while candidate in self._names:
            candidate = f"{name}_{k}"
            k += 1
        self._names.add(candidate)
        return candidate

    def _emit(self, stmt) -> None:
        if self._finalized:
            raise HgfError("module already elaborated; cannot add hardware")
        self._stack[-1].append(stmt)

    # -- conditions ----------------------------------------------------------

    def current_pred(self) -> Expr | None:
        """Conjunction of all enclosing when-conditions (for `var`)."""
        if not self._pred_stack:
            return None
        out = self._pred_stack[0]
        for p in self._pred_stack[1:]:
            out = E.and_(out, p)
        return out

    # -- connects ---------------------------------------------------------------

    def connect(self, target: Signal, value, info: SourceInfo) -> None:
        if not isinstance(target, Signal):
            raise HgfError(f"cannot connect to non-signal {target!r}")
        loc = target.expr
        if isinstance(value, Value):
            if value._mb is not self:
                raise HgfError(
                    "cannot connect a value from another module; use ports"
                )
            expr = value.expr
        elif isinstance(value, bool):
            expr = E.uint(int(value), 1)
        elif isinstance(value, int):
            expr = self._int_literal(value, loc.typ)
        else:
            raise HgfError(f"cannot connect {value!r}")
        self._emit(Connect(loc, expr, info))

    def _int_literal(self, value: int, typ: Type) -> Literal:
        if typ.is_ground():
            width = typ.bit_width()
            if isinstance(typ, SIntType) or value < 0:
                return E.sint(value, max(width, value.bit_length() + 1))
            return E.uint(value, max(width, value.bit_length(), 1))
        raise HgfError(f"cannot connect int literal to aggregate {typ}")


class Module:
    """Base class for hardware generators.

    Subclasses describe hardware in ``__init__``; public scalar attributes
    become *generator variables* visible in the debugger (paper Fig. 4A),
    and every port/wire/register attribute is a source-level variable.
    """

    def __init__(self) -> None:
        mb = ModuleBuilder(self)
        object.__setattr__(self, "_mb", mb)
        object.__setattr__(self, "clock", Value(Ref("clock", ClockType()), mb))
        object.__setattr__(self, "reset", Value(Ref("reset", ResetType()), mb))

    # -- declarations -------------------------------------------------------

    def input(self, name: str, width: int | None = None, typ: Type | None = None) -> Signal:
        """Declare an input port (``width`` bits UInt, or an explicit type)."""
        return self._port(name, "input", width, typ)

    def output(self, name: str, width: int | None = None, typ: Type | None = None) -> Signal:
        """Declare an output port."""
        return self._port(name, "output", width, typ)

    def _port(self, name, direction, width, typ) -> Signal:
        mb = self._mb
        t = _resolve_type(width, typ)
        uname = mb._unique(name)
        mb.ports.append(Port(uname, direction, t, srcloc.capture()))
        return Signal(Ref(uname, t), mb)

    def wire(self, name: str, width: int | None = None, typ: Type | None = None) -> Signal:
        """Declare a combinational wire."""
        mb = self._mb
        t = _resolve_type(width, typ)
        uname = mb._unique(name)
        mb._emit(DefWire(uname, t, srcloc.capture()))
        return Signal(Ref(uname, t), mb)

    def reg(
        self,
        name: str,
        width: int | None = None,
        typ: Type | None = None,
        init: int | None = None,
    ) -> Signal:
        """Declare a register.  With ``init``, the register synchronously
        resets to that value while the module reset is asserted."""
        mb = self._mb
        t = _resolve_type(width, typ)
        uname = mb._unique(name)
        reset = Ref("reset", ResetType()) if init is not None else None
        init_expr = None
        if init is not None:
            if t.is_ground():
                init_expr = (
                    E.sint(init, t.bit_width())
                    if isinstance(t, SIntType)
                    else E.uint(init, t.bit_width())
                )
            else:
                if init != 0:
                    raise HgfError("aggregate register init must be 0")
                init_expr = E.uint(0, 1)
        mb._emit(
            DefRegister(uname, t, Ref("clock", ClockType()), reset, init_expr, srcloc.capture())
        )
        return Signal(Ref(uname, t), mb)

    def node(self, name: str, value: Value) -> Value:
        """Name an intermediate value (Chisel's ``val x = ...``); the name
        becomes a source-level variable in the debugger."""
        mb = self._mb
        if not isinstance(value, Value):
            raise HgfError("node value must be a hardware value")
        uname = mb._unique(name)
        mb._emit(DefNode(uname, value.expr, srcloc.capture()))
        if uname != name:
            mb._name_hints.append((uname, name))
        return Value(Ref(uname, value.typ), mb)

    def var(self, name: str, init) -> Var:
        """A mutable generator-level binding with SSA version tracking —
        the idiom of paper Listing 1 (``sum`` accumulated in a loop).

        Each ``.set(value)`` creates a new versioned node (``sum_0``,
        ``sum_1``, ...) and, inside ``when`` blocks, muxes with the previous
        version so the binding is condition-correct.
        """
        return Var(self, name, init)

    def mem(
        self, name: str, width: int, depth: int, init: list[int] | None = None
    ) -> MemHandle:
        """Declare a memory with combinational read / synchronous write."""
        mb = self._mb
        uname = mb._unique(name)
        t = UIntType(width)
        mask = (1 << width) - 1
        init_t = tuple(v & mask for v in init) if init is not None else None
        if init_t is not None and len(init_t) > depth:
            raise HgfError(f"memory init longer than depth {depth}")
        mb._emit(DefMemory(uname, t, depth, init_t, srcloc.capture()))
        return MemHandle(self, uname, t, depth)

    def instance(self, name: str, child: Module) -> InstanceHandle:
        """Instantiate ``child`` under ``name``; clock and reset are
        connected automatically (reconnect to override)."""
        mb = self._mb
        if not isinstance(child, Module):
            raise HgfError("instance child must be a Module")
        if child is self:
            raise HgfError("a module cannot instantiate itself")
        cmb = child._mb
        if cmb._finalized:
            raise HgfError("child module already used in another parent")
        uname = mb._unique(name)
        mb._children.append((uname, child))
        mb._emit(DefInstance(uname, "?", srcloc.capture()))  # module name patched at elaborate
        handle = InstanceHandle(self, uname, child)
        # Auto-connect clock/reset first so user connects override them.
        mb._emit(Connect(handle.clock.expr, Ref("clock", ClockType()), UNKNOWN))
        mb._emit(Connect(handle.reset.expr, Ref("reset", ResetType()), UNKNOWN))
        return handle

    # -- control flow --------------------------------------------------------

    def when(self, cond: Value) -> _WhenContext:
        """Hardware conditional: ``with m.when(cond): ...``"""
        mb = self._mb
        pred = self._as_pred(cond)
        when = _When(pred, srcloc.capture(), chain_neg=E.not_(pred))
        mb._emit(when)
        return _WhenContext(mb, when, when.conseq, term=pred)

    def elsewhen(self, cond: Value) -> _WhenContext:
        """Chained conditional; must directly follow a ``when`` block."""
        mb = self._mb
        prev = mb._last_when.get(len(mb._stack) - 1)
        if prev is None:
            raise HgfError("elsewhen without a preceding when at this level")
        pred = self._as_pred(cond)
        assert prev.chain_neg is not None
        nested = _When(
            pred,
            srcloc.capture(),
            chain_neg=E.and_(prev.chain_neg, E.not_(pred)),
        )
        prev.alt.append(nested)
        return _WhenContext(
            mb, nested, nested.conseq, term=E.and_(prev.chain_neg, pred)
        )

    def otherwise(self) -> _WhenContext:
        """Else branch; must directly follow a ``when``/``elsewhen``."""
        mb = self._mb
        prev = mb._last_when.get(len(mb._stack) - 1)
        if prev is None:
            raise HgfError("otherwise without a preceding when at this level")
        assert prev.chain_neg is not None
        return _WhenContext(mb, prev, prev.alt, term=prev.chain_neg)

    def _as_pred(self, cond: Value) -> Expr:
        if not isinstance(cond, Value):
            raise HgfError("hardware condition must be a hardware value")
        if cond._mb is not self._mb:
            raise HgfError("condition belongs to another module")
        pred = cond.expr
        if pred.typ.bit_width() != 1:
            pred = E.orr(pred)
        return pred

    # -- side effects -----------------------------------------------------------

    def stop(self, cond: Value, exit_code: int = 0) -> None:
        """Finish simulation when ``cond`` holds at a clock edge."""
        self._mb._emit(Stop(self._as_pred(cond), exit_code, srcloc.capture()))

    def printf(self, cond: Value, fmt: str, *args: Value) -> None:
        """Print when ``cond`` holds at a clock edge; ``{}`` holes."""
        self._mb._emit(
            Printf(
                self._as_pred(cond),
                fmt,
                tuple(a.expr for a in args),
                srcloc.capture(),
            )
        )

    # -- literals ------------------------------------------------------------------

    def lit(self, value: int, width: int, signed: bool = False) -> Value:
        """An explicit literal value."""
        expr = E.sint(value, width) if signed else E.uint(value, width)
        return Value(expr, self._mb)


class Var:
    """Versioned mutable binding (see :meth:`Module.var`)."""

    def __init__(self, module: Module, name: str, init):
        self._module = module
        self._mb = module._mb
        self.name = name
        self._version = 0
        value = (
            init
            if isinstance(init, Value)
            else module.lit(int(init), max(int(init).bit_length(), 1))
        )
        uname = self._mb._unique(f"{name}_0")
        self._mb._emit(DefNode(uname, value.expr, srcloc.capture()))
        self._mb._name_hints.append((uname, name))
        self._current = Value(Ref(uname, value.typ), self._mb)

    @property
    def value(self) -> Value:
        """The current (latest version) value."""
        return self._current

    def set(self, value) -> None:
        """Bind a new version; inside ``when`` blocks the new version muxes
        with the previous one under the current condition."""
        if not isinstance(value, Value):
            value = self._module.lit(int(value), self._current.width)
        pred = self._mb.current_pred()
        expr = value.expr
        if pred is not None:
            from ..ir.passes.expand_whens import fit_to

            w = max(expr.typ.bit_width(), self._current.width)
            from ..ir.types import ground_like

            t = ground_like(expr.typ, w)
            expr = E.mux(pred, fit_to(expr, t), fit_to(self._current.expr, t))
        self._version += 1
        uname = self._mb._unique(f"{self.name}_{self._version}")
        self._mb._emit(DefNode(uname, expr, srcloc.capture()))
        self._mb._name_hints.append((uname, self.name))
        self._current = Value(Ref(uname, expr.typ), self._mb)

    # Arithmetic sugar: var participates in expressions via .value
    def __add__(self, other):
        return self._current + other

    def __sub__(self, other):
        return self._current - other

    def __mul__(self, other):
        return self._current * other

    def __and__(self, other):
        return self._current & other

    def __or__(self, other):
        return self._current | other

    def __xor__(self, other):
        return self._current ^ other


class MemHandle:
    """Handle to a declared memory."""

    def __init__(self, module: Module, name: str, typ: UIntType, depth: int):
        self._module = module
        self._mb = module._mb
        self.name = name
        self.typ = typ
        self.depth = depth

    def __getitem__(self, addr) -> Value:
        """Combinational read at ``addr``."""
        if not isinstance(addr, Value):
            addr = self._module.lit(int(addr), max(int(addr).bit_length(), 1))
        return Value(MemRead(self.name, addr.expr, self.typ), self._mb)

    def write(self, addr: Value, data, en) -> None:
        """Synchronous write, effective at the next clock edge when ``en``
        holds (and all enclosing ``when`` conditions hold)."""
        if not isinstance(addr, Value):
            raise HgfError("memory write address must be a hardware value")
        if not isinstance(data, Value):
            data = self._module.lit(int(data), self.typ.width)
        if isinstance(en, bool):
            en = self._module.lit(int(en), 1)
        pred = en.expr
        if pred.typ.bit_width() != 1:
            pred = E.orr(pred)
        self._mb._emit(
            MemWrite(self.name, addr.expr, data.expr, pred, srcloc.capture())
        )


class InstanceHandle:
    """Handle to a child instance; attribute access reaches its ports."""

    def __init__(self, parent: Module, name: str, child: Module):
        object.__setattr__(self, "_parent", parent)
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_child", child)

    @property
    def instance_name(self) -> str:
        return self._name

    def __getattr__(self, port: str) -> Signal:
        child_mb = self._child._mb
        for p in child_mb.ports:
            if p.name == port:
                from ..ir.types import Field

                bundle = BundleType(
                    tuple(
                        Field(q.name, q.typ, flip=(q.direction == "input"))
                        for q in child_mb.ports
                    )
                )
                ref = Ref(self._name, bundle)
                return Signal(
                    E.SubField(ref, port, p.typ), self._parent._mb
                )
        raise AttributeError(
            f"instance {self._name!r} has no port {port!r} "
            f"(ports: {[q.name for q in child_mb.ports]})"
        )

    def __setattr__(self, name, value):
        # `inst.port <<= v` desugars to `inst.port = inst.port.__ilshift__(v)`;
        # accept the write-back of the very signal the connect returned.
        from ..ir.expr import Ref, SubField

        if isinstance(value, Signal):
            e = value.expr
            if (
                isinstance(e, SubField)
                and isinstance(e.expr, Ref)
                and e.expr.name == self._name
                and e.name == name
            ):
                return
        raise HgfError(
            "drive instance ports with `inst.port <<= value`, not attribute "
            "assignment"
        )


def _resolve_type(width: int | None, typ: Type | None) -> Type:
    if (width is None) == (typ is None):
        raise HgfError("specify exactly one of width= or typ=")
    if width is not None:
        if not isinstance(width, int) or width <= 0:
            raise HgfError(f"width must be a positive int, got {width!r}")
        return UIntType(width)
    assert typ is not None
    if isinstance(typ, Type):
        return typ
    raise HgfError(f"typ must be a hardware type, got {typ!r}")
