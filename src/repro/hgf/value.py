"""Hardware values with operator overloading.

A :class:`Value` wraps an IR expression.  Arithmetic, comparison, bitwise,
and shift operators build new expressions with inferred widths; Python ints
are lifted to literals automatically.  :class:`Signal` additionally supports
the connect operator ``<<=`` which records the *generator source location*
of the assignment — the information breakpoints are built from.
"""

from __future__ import annotations

from ..ir import expr as E
from ..ir.expr import Expr
from ..ir.types import BundleType, SIntType, Type, VecType
from . import srcloc


class Value:
    """An immutable hardware expression bound to a module under construction."""

    __slots__ = ("_expr", "_mb")

    def __init__(self, expr: Expr, mb) -> None:
        object.__setattr__(self, "_expr", expr)
        object.__setattr__(self, "_mb", mb)

    # -- introspection ---------------------------------------------------

    @property
    def expr(self) -> Expr:
        return self._expr

    @property
    def typ(self) -> Type:
        return self._expr.typ

    @property
    def width(self) -> int:
        return self._expr.typ.bit_width()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._expr} : {self.typ}>"

    def __hash__(self) -> int:
        return id(self)

    def __bool__(self) -> bool:
        raise TypeError(
            "hardware values have no Python truth value; use "
            "`with m.when(cond):` for hardware conditionals"
        )

    # -- structure -------------------------------------------------------

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        typ = self._expr.typ
        if isinstance(typ, BundleType) and typ.has_field(name):
            return type(self)(E.sub_field(self._expr, name), self._mb)
        raise AttributeError(
            f"{typ} has no field {name!r}"
            + (f" (fields: {[f.name for f in typ.fields]})" if isinstance(typ, BundleType) else "")
        )

    def __setattr__(self, name: str, value):
        # `sig.field <<= v` desugars to `sig.field = sig.field.__ilshift__(v)`;
        # accept the write-back of the very sub-field signal that connect
        # returned, reject everything else (hardware values are immutable).
        from ..ir.expr import SubField as _SubField

        if (
            isinstance(value, Value)
            and isinstance(value._expr, _SubField)
            and value._expr.name == name
            and value._expr.expr == self._expr
        ):
            return
        raise AttributeError(
            f"cannot assign attribute {name!r}; drive fields with "
            "`sig.field <<= value`"
        )

    def __getitem__(self, idx):
        typ = self._expr.typ
        if isinstance(typ, VecType):
            if isinstance(idx, int):
                return type(self)(E.sub_index(self._expr, idx), self._mb)
            raise TypeError(
                "dynamic vec indexing: use repro.hgf.select(vec, index)"
            )
        if isinstance(idx, slice):
            if idx.step is not None:
                raise TypeError("bit slices cannot have a step")
            hi, lo = idx.start, idx.stop
            if hi is None or lo is None:
                raise TypeError("bit slices need explicit bounds, e.g. v[7:0]")
            if hi < lo:
                raise ValueError(f"bit slice is [hi:lo] (inclusive); got [{hi}:{lo}]")
            return Value(E.bits(self._expr, hi, lo), self._mb)
        if isinstance(idx, int):
            return Value(E.bits(self._expr, idx, idx), self._mb)
        if isinstance(idx, Value):
            raise TypeError("dynamic bit select: use (v >> i)[0]")
        raise TypeError(f"cannot index value with {idx!r}")

    # -- literal lifting ---------------------------------------------------

    def _lift(self, other) -> Expr:
        if isinstance(other, Value):
            if other._mb is not self._mb:
                raise ValueError(
                    "cannot combine values from different modules; "
                    "route them through ports"
                )
            return other._expr
        if isinstance(other, bool):
            return E.uint(int(other), 1)
        if isinstance(other, int):
            if isinstance(self.typ, SIntType):
                width = max(self.width, other.bit_length() + 1)
                return E.sint(other, width)
            if other < 0:
                raise ValueError(
                    f"negative literal {other} with unsigned operand; "
                    "use .as_sint() or an SInt signal"
                )
            width = max(self.width, other.bit_length(), 1)
            return E.uint(other, width)
        raise TypeError(f"cannot lift {other!r} to a hardware value")

    def _binop(self, fn, other, swap: bool = False) -> Value:
        rhs = self._lift(other)
        a, b = (rhs, self._expr) if swap else (self._expr, rhs)
        return Value(fn(a, b), self._mb)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other):
        return self._binop(E.add, other)

    def __radd__(self, other):
        return self._binop(E.add, other, swap=True)

    def __sub__(self, other):
        return self._binop(E.sub, other)

    def __rsub__(self, other):
        return self._binop(E.sub, other, swap=True)

    def __mul__(self, other):
        return self._binop(E.mul, other)

    def __rmul__(self, other):
        return self._binop(E.mul, other, swap=True)

    def __floordiv__(self, other):
        return self._binop(E.div, other)

    def __mod__(self, other):
        return self._binop(E.rem, other)

    def __neg__(self):
        return Value(E.neg(self._expr), self._mb)

    # -- comparisons ---------------------------------------------------------

    def __lt__(self, other):
        return self._binop(E.lt, other)

    def __le__(self, other):
        return self._binop(E.leq, other)

    def __gt__(self, other):
        return self._binop(E.gt, other)

    def __ge__(self, other):
        return self._binop(E.geq, other)

    def __eq__(self, other):  # type: ignore[override]
        return self._binop(E.eq, other)

    def __ne__(self, other):  # type: ignore[override]
        return self._binop(E.neq, other)

    # -- bitwise ---------------------------------------------------------------

    def __and__(self, other):
        return self._binop(E.and_, other)

    def __rand__(self, other):
        return self._binop(E.and_, other, swap=True)

    def __or__(self, other):
        return self._binop(E.or_, other)

    def __ror__(self, other):
        return self._binop(E.or_, other, swap=True)

    def __xor__(self, other):
        return self._binop(E.xor, other)

    def __rxor__(self, other):
        return self._binop(E.xor, other, swap=True)

    def __invert__(self):
        return Value(E.not_(self._expr), self._mb)

    def __lshift__(self, other):
        if isinstance(other, int):
            return Value(E.shl(self._expr, other), self._mb)
        return self._binop(E.dshl, other)

    def __rshift__(self, other):
        if isinstance(other, int):
            return Value(E.shr(self._expr, other), self._mb)
        return self._binop(E.dshr, other)

    # -- methods ----------------------------------------------------------------

    def cat(self, other: Value) -> Value:
        """Concatenate; ``self`` supplies the high bits."""
        return self._binop(E.cat, other)

    def pad(self, width: int) -> Value:
        """Zero-/sign-extend (by signedness) to at least ``width`` bits."""
        return Value(E.pad(self._expr, width), self._mb)

    def as_sint(self) -> Value:
        """Reinterpret the bits as signed."""
        return Value(E.as_sint(self._expr), self._mb)

    def as_uint(self) -> Value:
        """Reinterpret the bits as unsigned."""
        return Value(E.as_uint(self._expr), self._mb)

    def andr(self) -> Value:
        """AND-reduction to 1 bit."""
        return Value(E.andr(self._expr), self._mb)

    def orr(self) -> Value:
        """OR-reduction to 1 bit (non-zero test)."""
        return Value(E.orr(self._expr), self._mb)

    def xorr(self) -> Value:
        """XOR-reduction (parity) to 1 bit."""
        return Value(E.xorr(self._expr), self._mb)


class Signal(Value):
    """A connectable value: wire, register, output port, or instance port.

    ``sig <<= rhs`` drives the signal, recording the generator source
    location of the statement (last-connect-wins, condition-sensitive under
    ``when`` blocks — exactly Chisel's ``:=``).
    """

    __slots__ = ()

    def __ilshift__(self, other):
        info = srcloc.capture()
        self._mb.connect(self, other, info)
        return self

    def assign(self, other) -> None:
        """Method form of ``<<=`` (useful in comprehensions)."""
        info = srcloc.capture()
        self._mb.connect(self, other, info)

    def __getattr__(self, name: str):
        # Bundle fields of a connectable are themselves connectable.
        return super().__getattr__(name)


def mux(cond: Value, tval, fval) -> Value:
    """2:1 multiplexer: ``mux(sel, a, b)`` is ``a`` when ``sel`` else ``b``."""
    if not isinstance(cond, Value):
        raise TypeError("mux condition must be a hardware value")
    t = cond._lift(tval)
    f = cond._lift(fval)
    c = cond.expr
    if c.typ.bit_width() != 1:
        c = E.orr(c)
    return Value(E.mux(c, t, f), cond._mb)


def cat(*values: Value) -> Value:
    """Concatenate any number of values, first argument highest."""
    if len(values) < 2:
        raise ValueError("cat needs at least two values")
    out = values[0]
    for v in values[1:]:
        out = out.cat(v)
    return out


def select(vec: Value, index: Value) -> Value:
    """Dynamically index a Vec-typed value with a mux chain."""
    typ = vec.typ
    if not isinstance(typ, VecType):
        raise TypeError(f"select requires a Vec value, got {typ}")
    out = vec[0]
    for i in range(1, typ.size):
        out = mux(index == i, vec[i], out)
    return out


def fill(value: Value, count: int) -> Value:
    """Replicate a value ``count`` times (like Verilog ``{N{v}}``)."""
    if count < 1:
        raise ValueError("fill count must be >= 1")
    out = value
    for _ in range(count - 1):
        out = out.cat(value)
    return out
