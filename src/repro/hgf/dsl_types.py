"""Type constructors for the eDSL, mirroring Chisel's ``UInt``/``SInt``/
``Bundle``/``Vec``/``Flipped``."""

from __future__ import annotations

from ..ir.types import (
    BundleType,
    Field,
    SIntType,
    Type,
    UIntType,
    VecType,
)


def UInt(width: int) -> UIntType:
    """Unsigned hardware integer of ``width`` bits."""
    return UIntType(width)


def SInt(width: int) -> SIntType:
    """Signed (two's complement) hardware integer of ``width`` bits."""
    return SIntType(width)


class Flip:
    """Marks a bundle field as flipped (opposite direction), like Chisel's
    ``Flipped``.  Used for ready/valid handshakes and bidirectional IO."""

    def __init__(self, typ: Type):
        if isinstance(typ, Flip):
            raise TypeError("cannot flip a flipped type")
        self.typ = typ


def Bundle(**fields) -> BundleType:
    """A record type.  Field order follows keyword order::

        io_t = Bundle(data=UInt(8), valid=UInt(1), ready=Flip(UInt(1)))
    """
    out = []
    for name, typ in fields.items():
        if isinstance(typ, Flip):
            out.append(Field(name, typ.typ, flip=True))
        else:
            out.append(Field(name, typ, flip=False))
    return BundleType(tuple(out))


def Vec(size: int, elem: Type) -> VecType:
    """A fixed-size array type of ``size`` elements."""
    if isinstance(elem, Flip):
        raise TypeError("vec elements cannot be flipped")
    return VecType(elem, size)
