"""repro.hgf — a Chisel-like hardware generator framework embedded in Python.

Quick example::

    import repro.hgf as hgf

    class Counter(hgf.Module):
        def __init__(self, width=8):
            super().__init__()
            self.width = width                     # generator variable
            self.en = self.input("en", 1)
            self.out = self.output("out", width)
            count = self.reg("count", width, init=0)
            with self.when(self.en == 1):
                count <<= count + 1
            self.out <<= count

    circuit = hgf.elaborate(Counter())

Every statement records its Python source location; ``repro.compile`` turns
the elaborated circuit into simulator-ready RTL plus the hgdb symbol table.
"""

from .dsl_types import Bundle, Flip, SInt, UInt, Vec
from .elaborate import elaborate
from .module import HgfError, InstanceHandle, MemHandle, Module, Var
from .value import Signal, Value, cat, fill, mux, select

__all__ = [
    "Bundle",
    "Flip",
    "HgfError",
    "InstanceHandle",
    "MemHandle",
    "Module",
    "SInt",
    "Signal",
    "UInt",
    "Value",
    "Var",
    "Vec",
    "cat",
    "elaborate",
    "fill",
    "mux",
    "select",
]
