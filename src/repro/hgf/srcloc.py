"""Generator source-location capture.

Chisel records the Scala file/line of every statement into FIRRTL; our eDSL
does the same for Python by walking the interpreter stack to the first frame
outside the ``repro`` package.  That locator is what breakpoints are set
against.
"""

from __future__ import annotations

import os
import sys

from ..ir.source import UNKNOWN, SourceInfo

# Only the generator *framework* is skipped when attributing statements —
# generators shipped inside this package (repro.cpu, repro.fpu) are user
# code from the debugger's point of view, exactly like RocketChip is user
# code to Chisel.
_FRAMEWORK_DIR = os.path.dirname(os.path.abspath(__file__))


def capture(extra_skip: int = 0) -> SourceInfo:
    """Return the source location of the nearest caller outside the hgf
    framework.

    ``extra_skip`` skips additional user-side frames (rarely needed).
    """
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.startswith(_FRAMEWORK_DIR):
            for _ in range(extra_skip):
                if frame.f_back is None:
                    break
                frame = frame.f_back
                filename = frame.f_code.co_filename
            return SourceInfo(os.path.abspath(filename), frame.f_lineno)
        frame = frame.f_back
    return UNKNOWN
