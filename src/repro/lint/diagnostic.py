"""Structured diagnostics: the one reporting path for static analysis.

Everything that inspects a circuit *before* simulation — the form checkers
in ``repro.ir.passes.check`` and the lint rules in ``repro.lint.rules`` —
emits :class:`Diagnostic` records instead of raising on the first problem.
A diagnostic carries the rule id, a severity, the offending module, and the
``SourceInfo`` of the originating generator (HGF DSL) statement, so every
finding points the user at their own source line — the same source mapping
the symbol table uses for runtime breakpoints.

This module is intentionally dependency-light (only ``repro.ir.source``) so
the IR layer can import it without cycles; the heavier analysis engine
lives in :mod:`repro.lint.engine`.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from ..ir.source import UNKNOWN, SourceInfo


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> Severity:
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[str(s) for s in cls]}"
            ) from None


@dataclass(frozen=True, slots=True)
class Related:
    """A secondary location attached to a diagnostic (e.g. the other
    driver of a multiply-driven sink)."""

    location: SourceInfo
    note: str = ""

    def to_json(self) -> dict:
        return {
            "file": self.location.filename,
            "line": self.location.line,
            "column": self.location.column,
            "note": self.note,
        }


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        rule: stable rule identifier (``"comb-cycle"``, ``"undriven"``...).
        severity: :class:`Severity` of the finding.
        message: human-readable description.
        module: IR module the finding is in ("" for circuit-level findings).
        location: generator source locator of the offending statement.
        related: secondary locations that complete the picture.
    """

    rule: str
    severity: Severity
    message: str
    module: str = ""
    location: SourceInfo = UNKNOWN
    related: tuple[Related, ...] = ()

    def format(self) -> str:
        """Render as ``file:line: severity: [rule] message`` — the console
        and CLI output format (one finding per line, click-to-source)."""
        where = str(self.location) if self.location.is_known() else "<unknown>"
        scope = f" (module {self.module})" if self.module else ""
        out = f"{where}: {self.severity}: [{self.rule}] {self.message}{scope}"
        for rel in self.related:
            out += f"\n    related: {rel.location}: {rel.note}"
        return out

    def to_json(self) -> dict:
        """Machine-readable form (the ``--json`` schema; see docs/lint.md)."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "module": self.module,
            "file": self.location.filename,
            "line": self.location.line,
            "column": self.location.column,
            "related": [r.to_json() for r in self.related],
        }

    def sort_key(self) -> tuple[Any, ...]:
        # Known locations first, then lexical order, then rule id for
        # stability between runs.
        return (
            not self.location.is_known(),
            self.location.order_key(),
            -int(self.severity),
            self.rule,
            self.module,
            self.message,
        )


@dataclass(slots=True)
class DiagnosticCollector:
    """Accumulates diagnostics instead of dying on the first one.

    The form checkers and every lint rule write through a collector; the
    caller decides whether the batch warrants an exception
    (:meth:`worst` / ``repro.ir.passes.check.CheckError``).
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def emit(
        self,
        rule: str,
        severity: Severity,
        message: str,
        module: str = "",
        location: SourceInfo = UNKNOWN,
        related: tuple[Related, ...] = (),
    ) -> Diagnostic:
        d = Diagnostic(rule, severity, message, module, location, related)
        self.diagnostics.append(d)
        return d

    def error(self, rule: str, message: str, **kw: Any) -> Diagnostic:
        return self.emit(rule, Severity.ERROR, message, **kw)

    def warning(self, rule: str, message: str, **kw: Any) -> Diagnostic:
        return self.emit(rule, Severity.WARNING, message, **kw)

    def info(self, rule: str, message: str, **kw: Any) -> Diagnostic:
        return self.emit(rule, Severity.INFO, message, **kw)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def worst(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """The highest severity present, or None for an empty batch."""
    worst: Severity | None = None
    for d in diagnostics:
        if worst is None or d.severity > worst:
            worst = d.severity
    return worst


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity >= Severity.ERROR for d in diagnostics)


def format_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    """Multi-line human-readable rendering, sorted by source location."""
    return "\n".join(
        d.format() for d in sorted(diagnostics, key=Diagnostic.sort_key)
    )


def diagnostics_to_json(
    diagnostics: Iterable[Diagnostic], *, design: str = ""
) -> dict:
    """The ``--json`` document: a stable machine format for CI gating."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    counts: dict[str, int] = {}
    for d in ordered:
        counts[str(d.severity)] = counts.get(str(d.severity), 0) + 1
    return {
        "version": 1,
        "design": design,
        "counts": counts,
        "diagnostics": [d.to_json() for d in ordered],
    }
