"""The built-in lint rule set.

Each rule is a small :class:`~repro.lint.engine.Rule` subclass that walks
one lowering stage of the circuit and emits structured diagnostics.  Every
diagnostic points at the ``SourceInfo`` of the originating generator (HGF
DSL) statement — the same source mapping the symbol table uses for runtime
breakpoints, applied *before* simulation.

The catalog (see ``docs/lint.md``):

==================  ========  =====================================
rule id             severity  finding
==================  ========  =====================================
comb-cycle          error     combinational feedback loop (cross-
                              module aware via port comb-through)
undriven            warning   wire/output/instance input never
                              connected (defaults to 0)
unused-signal       warning   declared signal never read — liveness
                              closure WITHOUT the register/memory
                              auto-roots DCE keeps
width-trunc         warning   connect silently truncates its source
const-when          warning   when condition folds to a constant;
                              one branch is unreachable
multi-driven        warning   unconditional same-scope reconnect —
                              the earlier driver is dead
uninit-reg          warning   register with neither reset nor init
                              whose value is read
const-stop          warning   stop condition folds to a constant
const-printf        info      printf condition folds to a constant
const-mux           warning   mux select folds to a constant; one
                              input is unreachable
==================  ========  =====================================

Form errors (duplicate-def, undeclared-ref, mux-width, multi-driver-low,
...) come from ``repro.ir.passes.check`` through the same diagnostic
engine.
"""

from __future__ import annotations

from ..ir.expr import (
    Expr,
    Literal,
    MemRead,
    PrimOp,
    Ref,
    SubField,
    SubIndex,
    walk_expr,
)
from ..ir.source import UNKNOWN, SourceInfo
from ..ir.stmt import (
    Block,
    Circuit,
    Conditionally,
    Connect,
    DefInstance,
    DefMemory,
    DefNode,
    DefRegister,
    DefWire,
    MemWrite,
    ModuleIR,
    Printf,
    Stmt,
    Stop,
    root_ref,
    walk_stmts,
)
from .diagnostic import DiagnosticCollector, Related
from .engine import FORM_HIGH, LintContext, Rule

# ---------------------------------------------------------------------------
# shared walkers


def _stmt_reads(s: Stmt) -> list[Expr]:
    """Expressions a statement *reads* (connect targets excluded)."""
    if isinstance(s, DefNode):
        return [s.value]
    if isinstance(s, Connect):
        return [s.expr]
    if isinstance(s, Conditionally):
        return [s.pred]
    if isinstance(s, MemWrite):
        return [s.addr, s.data, s.en]
    if isinstance(s, Stop):
        return [s.cond]
    if isinstance(s, Printf):
        return [s.cond, *s.args]
    if isinstance(s, DefRegister):
        out = [s.clock]
        if s.reset is not None:
            out.append(s.reset)
        if s.init is not None:
            out.append(s.init)
        return out
    return []


def _read_names(m: ModuleIR) -> set[str]:
    """Every Ref / memory name read anywhere in the module body."""
    reads: set[str] = set()
    for s in walk_stmts(m.body):
        for e in _stmt_reads(s):
            for node in walk_expr(e):
                if isinstance(node, Ref):
                    reads.add(node.name)
                elif isinstance(node, MemRead):
                    reads.add(node.mem)
    return reads


def _dep_keys(e: Expr, keys: set[str]) -> None:
    """Combinational dependency keys of an expression.

    Like ``expr_refs`` but instance-port precise (``inst.port`` instead of
    collapsing to ``inst``) and memory-state aware: a combinational memory
    read depends on its *address* only — the contents are cross-cycle state,
    like a register.
    """
    if isinstance(e, Ref):
        keys.add(e.name)
    elif isinstance(e, SubField):
        if isinstance(e.expr, Ref):
            keys.add(f"{e.expr.name}.{e.name}")
        else:
            _dep_keys(e.expr, keys)
    elif isinstance(e, SubIndex):
        _dep_keys(e.expr, keys)
    elif isinstance(e, MemRead):
        _dep_keys(e.addr, keys)
    elif isinstance(e, PrimOp):
        for a in e.args:
            _dep_keys(a, keys)


def _target_key(loc: Expr) -> str | None:
    """The dependency key a Low-form connect drives, or None if unusual."""
    if isinstance(loc, Ref):
        return loc.name
    if isinstance(loc, SubField) and isinstance(loc.expr, Ref):
        return f"{loc.expr.name}.{loc.name}"
    return None


def _literal_env(m: ModuleIR) -> dict[str, Literal]:
    """Literal-valued nodes, accumulated in statement order so later node
    values fold through earlier ones."""
    from ..ir.passes.const_prop import fold_expr

    env: dict[str, Literal] = {}
    for s in walk_stmts(m.body):
        if isinstance(s, DefNode):
            value = fold_expr(s.value, env)
            if isinstance(value, Literal):
                env[s.name] = value
    return env


def _fold(e: Expr, env: dict[str, Literal]) -> Expr:
    from ..ir.passes.const_prop import fold_expr

    return fold_expr(e, env)


# ---------------------------------------------------------------------------
# rules


class CombCycleRule(Rule):
    """Combinational feedback loops, including loops that thread through
    child instances (computed from per-module output->input comb-through
    sets, substituted at each instantiation)."""

    rule_id = "comb-cycle"
    description = "combinational logic feeds back into itself"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        low = ctx.low()
        if low is None:
            return
        comb_through: dict[str, dict[str, set[str]]] = {}
        for name in _modules_bottom_up(low):
            m = low.modules[name]
            edges, infos = self._local_graph(m, low, comb_through)
            in_ports = {p.name for p in m.ports if p.direction == "input"}
            out_ports = [p.name for p in m.ports if p.direction == "output"]
            comb_through[name] = {
                o: _reachable(edges, o) & in_ports for o in out_ports
            }
            cycle = _find_cycle(edges)
            if cycle:
                path = " -> ".join([*cycle, cycle[0]])
                where, related = _cycle_locations(cycle, infos)
                out.error(
                    self.rule_id,
                    f"combinational cycle: {path}",
                    module=m.name,
                    location=where,
                    related=related,
                )

    @staticmethod
    def _local_graph(
        m: ModuleIR,
        circuit: Circuit,
        comb_through: dict[str, dict[str, set[str]]],
    ) -> tuple[dict[str, set[str]], dict[str, SourceInfo]]:
        regs = {
            s.name for s in m.body if isinstance(s, DefRegister)
        }
        edges: dict[str, set[str]] = {}
        infos: dict[str, SourceInfo] = {}
        for s in m.body:
            if isinstance(s, DefNode):
                deps: set[str] = set()
                _dep_keys(s.value, deps)
                edges.setdefault(s.name, set()).update(deps)
                infos.setdefault(s.name, s.info)
            elif isinstance(s, Connect):
                key = _target_key(s.loc)
                if key is None or key.split(".", 1)[0] in regs:
                    continue  # register writes break combinational paths
                deps = set()
                _dep_keys(s.expr, deps)
                edges.setdefault(key, set()).update(deps)
                infos.setdefault(key, s.info)
            elif isinstance(s, DefInstance):
                through = comb_through.get(s.module)
                if through is None:
                    continue  # recursive/unknown child: no through info
                for o, ins in through.items():
                    edges.setdefault(f"{s.name}.{o}", set()).update(
                        f"{s.name}.{i}" for i in ins
                    )
                    infos.setdefault(f"{s.name}.{o}", s.info)
        return edges, infos


def _modules_bottom_up(circuit: Circuit) -> list[str]:
    """Module names with children before parents (cycles broken arbitrarily
    — instantiation recursion is already a form problem)."""
    children: dict[str, set[str]] = {
        name: {
            s.module
            for s in m.body
            if isinstance(s, DefInstance) and s.module in circuit.modules
        }
        for name, m in circuit.modules.items()
    }
    order: list[str] = []
    seen: set[str] = set()

    def visit(name: str, stack: set[str]) -> None:
        if name in seen or name in stack:
            return
        stack.add(name)
        for child in sorted(children.get(name, ())):
            visit(child, stack)
        stack.discard(name)
        seen.add(name)
        order.append(name)

    for name in circuit.modules:
        visit(name, set())
    return order


def _reachable(edges: dict[str, set[str]], start: str) -> set[str]:
    seen: set[str] = set()
    work = [start]
    while work:
        key = work.pop()
        if key in seen:
            continue
        seen.add(key)
        work.extend(edges.get(key, ()))
    return seen


def _find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    """First combinational cycle in the graph, as the list of keys on it."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(edges, WHITE)
    for root in sorted(edges):
        if color.get(root, WHITE) != WHITE:
            continue
        path: list[str] = []
        # iterative DFS: (node, iterator over children)
        stack = [(root, iter(sorted(edges.get(root, ()))))]
        color[root] = GRAY
        path.append(root)
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                c = color.get(child, WHITE)
                if c == GRAY:
                    return path[path.index(child):]
                if c == WHITE:
                    color[child] = GRAY
                    path.append(child)
                    stack.append(
                        (child, iter(sorted(edges.get(child, ()))))
                    )
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None


def _cycle_locations(
    cycle: list[str], infos: dict[str, SourceInfo]
) -> tuple[SourceInfo, tuple[Related, ...]]:
    known = [
        (k, infos[k]) for k in cycle if k in infos and infos[k].is_known()
    ]
    if not known:
        return UNKNOWN, ()
    where = known[0][1]
    related = tuple(
        Related(info, f"through {key}") for key, info in known[1:4]
    )
    return where, related


class UndrivenRule(Rule):
    """Wires, output ports, and instance inputs that are never connected.
    ExpandWhens silently defaults these to 0 — flag them first."""

    rule_id = "undriven"
    description = "signal is never driven and defaults to 0"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        typed = ctx.typed()
        if typed is None:
            return
        for m in typed.modules.values():
            driven: set[str] = set()
            for s in walk_stmts(m.body):
                if isinstance(s, Connect):
                    try:
                        root = root_ref(s.loc)
                    except TypeError:
                        continue
                    key = _target_key(s.loc) or root.name
                    driven.add(key)
                    driven.add(root.name)
            instances = {
                s.name: (s.module, s.info)
                for s in m.body
                if isinstance(s, DefInstance)
            }
            for s in m.body:
                if isinstance(s, DefWire) and s.name not in driven:
                    out.warning(
                        self.rule_id,
                        f"wire {s.name!r} is never driven "
                        f"(defaults to 0)",
                        module=m.name,
                        location=s.info,
                    )
            for p in m.ports:
                if p.direction == "output" and p.name not in driven:
                    out.warning(
                        self.rule_id,
                        f"output port {p.name!r} is never driven "
                        f"(defaults to 0)",
                        module=m.name,
                        location=p.info,
                    )
            for inst, (mod, info) in instances.items():
                child = typed.modules.get(mod)
                if child is None:
                    continue
                for p in child.ports:
                    key = f"{inst}.{p.name}"
                    if p.direction == "input" and key not in driven:
                        out.warning(
                            self.rule_id,
                            f"instance input {key!r} is never driven "
                            f"(defaults to 0)",
                            module=m.name,
                            location=info,
                        )


class UnusedSignalRule(Rule):
    """Signals whose value is never read.

    DCE keeps registers, memories, and instances alive unconditionally
    (their behavior is observable across cycles), so dead state survives to
    the netlist silently — this rule runs the same liveness closure
    *without* those auto-roots and flags what only survives because of
    them."""

    rule_id = "unused-signal"
    description = "declared signal is never read"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        typed = ctx.typed()
        if typed is None:
            return
        for m in typed.modules.values():
            out_ports = {
                p.name for p in m.ports if p.direction == "output"
            }
            defs: dict[str, Stmt] = {}
            drivers: dict[str, set[str]] = {}
            roots: set[str] = set()

            def read_refs(e: Expr) -> set[str]:
                names: set[str] = set()
                for node in walk_expr(e):
                    if isinstance(node, Ref):
                        names.add(node.name)
                    elif isinstance(node, MemRead):
                        names.add(node.mem)
                return names

            for s in walk_stmts(m.body):
                if isinstance(
                    s,
                    (DefWire, DefRegister, DefMemory, DefNode, DefInstance),
                ):
                    defs[s.name] = s

            for s in walk_stmts(m.body):
                if isinstance(s, DefRegister):
                    extra = read_refs(s.clock)
                    if s.reset is not None:
                        extra |= read_refs(s.reset)
                    if s.init is not None:
                        extra |= read_refs(s.init)
                    drivers.setdefault(s.name, set()).update(extra)
                elif isinstance(s, DefNode):
                    drivers.setdefault(s.name, set()).update(
                        read_refs(s.value)
                    )
                elif isinstance(s, Connect):
                    try:
                        root = root_ref(s.loc)
                    except TypeError:
                        continue
                    reads = read_refs(s.expr)
                    target = root.name
                    is_inst = isinstance(defs.get(target), DefInstance)
                    if is_inst or target in out_ports:
                        roots |= reads
                        if is_inst:
                            roots.add(target)
                    else:
                        drivers.setdefault(target, set()).update(reads)
                elif isinstance(s, MemWrite):
                    # a write keeps its *operands* interesting only if the
                    # memory is ever read; route them through the memory.
                    drivers.setdefault(s.mem, set()).update(
                        read_refs(s.addr)
                        | read_refs(s.data)
                        | read_refs(s.en)
                    )
                elif isinstance(s, (Stop, Printf)):
                    roots |= read_refs(s.cond)
                    if isinstance(s, Printf):
                        for a in s.args:
                            roots |= read_refs(a)
                elif isinstance(s, Conditionally):
                    roots |= read_refs(s.pred)

            alive: set[str] = set()
            work = list(roots | out_ports)
            while work:
                name = work.pop()
                if name in alive:
                    continue
                alive.add(name)
                work.extend(drivers.get(name, ()))

            kinds = {
                DefWire: "wire",
                DefRegister: "register",
                DefNode: "node",
                DefMemory: "memory",
            }
            for name, d in defs.items():
                kind = kinds.get(type(d))
                if kind is None or name in alive:
                    continue
                if name.startswith("_"):
                    continue  # compiler temp, not user-declared
                out.warning(
                    self.rule_id,
                    f"{kind} {name!r} is never read",
                    module=m.name,
                    location=d.info,
                )


class WidthTruncRule(Rule):
    """Connects whose source expression is wider than the target: the high
    bits are silently dropped by ``fit_to`` during lowering."""

    rule_id = "width-trunc"
    description = "connect silently truncates its source expression"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        for m in ctx.circuit.modules.values():
            for s in walk_stmts(m.body):
                if not isinstance(s, Connect):
                    continue
                if not (s.loc.typ.is_ground() and s.expr.typ.is_ground()):
                    continue
                lw = s.loc.typ.bit_width()
                ew = s.expr.typ.bit_width()
                if ew <= lw or self._modular_growth(s.expr, lw):
                    continue
                out.warning(
                    self.rule_id,
                    f"connecting {ew}-bit expression to {lw}-bit "
                    f"{s.loc} truncates the top {ew - lw} bit(s)",
                    module=m.name,
                    location=s.info,
                )

    @staticmethod
    def _modular_growth(e: Expr, loc_width: int) -> bool:
        """True for the modular-arithmetic idiom ``count <<= count + 1``:
        add/sub grow the result by one carry bit, and dropping only that
        carry when the target holds the widest operand is intentional
        wraparound, not data loss."""
        return (
            isinstance(e, PrimOp)
            and e.op in ("add", "sub")
            and loc_width >= max(a.typ.bit_width() for a in e.args)
        )


class ConstWhenRule(Rule):
    """``when`` conditions that fold to a constant: one branch can never
    execute."""

    rule_id = "const-when"
    description = "when condition is constant; a branch is unreachable"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        if ctx.form != FORM_HIGH:
            return
        for m in ctx.circuit.modules.values():
            env = _literal_env(m)
            for s in walk_stmts(m.body):
                if not isinstance(s, Conditionally):
                    continue
                pred = _fold(s.pred, env)
                if not isinstance(pred, Literal):
                    continue
                if pred.value:
                    msg = "when condition is always true"
                    if len(s.alt):
                        msg += "; the otherwise branch is unreachable"
                else:
                    msg = (
                        "when condition is always false; the when branch "
                        "is unreachable"
                    )
                out.warning(
                    self.rule_id, msg, module=m.name, location=s.info
                )


class MultiDrivenRule(Rule):
    """Two unconditional connects to the same sink in the same scope:
    last-connect-wins makes the earlier one dead code."""

    rule_id = "multi-driven"
    description = "same-scope reconnect shadows an earlier driver"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        if ctx.form != FORM_HIGH:
            return  # in Low form this is the multi-driver-low form error
        for m in ctx.circuit.modules.values():
            self._scan_block(m.body, m.name, out)

    def _scan_block(
        self, block: Block, module: str, out: DiagnosticCollector
    ) -> None:
        last: dict[str, Connect] = {}
        for s in block:
            if isinstance(s, Conditionally):
                self._scan_block(s.conseq, module, out)
                self._scan_block(s.alt, module, out)
                # a conditional write in between makes the override
                # meaningful (partial update), so forget prior drivers
                # of anything connected inside.
                for inner in walk_stmts(Block((s,))):
                    if isinstance(inner, Connect):
                        last.pop(str(inner.loc), None)
                continue
            if not isinstance(s, Connect):
                continue
            key = str(s.loc)
            prev = last.get(key)
            if prev is not None and prev.info.is_known():
                out.warning(
                    self.rule_id,
                    f"{key} reconnected in the same scope; the earlier "
                    f"driver is dead (last connect wins)",
                    module=module,
                    location=s.info,
                    related=(
                        Related(prev.info, f"earlier driver of {key}"),
                    ),
                )
            last[key] = s


class UninitRegRule(Rule):
    """Registers with neither reset nor init whose value is read: the first
    cycles observe the simulator's implicit 0, which real hardware does not
    guarantee."""

    rule_id = "uninit-reg"
    description = "register has no reset or init but its value is read"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        for m in ctx.circuit.modules.values():
            reads = _read_names(m)
            for s in walk_stmts(m.body):
                if (
                    isinstance(s, DefRegister)
                    and s.reset is None
                    and s.init is None
                    and s.name in reads
                ):
                    out.warning(
                        self.rule_id,
                        f"register {s.name!r} has neither reset nor "
                        f"init; reads before the first write see an "
                        f"arbitrary power-on value",
                        module=m.name,
                        location=s.info,
                    )


class _ConstCondRule(Rule):
    """Shared machinery for constant Stop/Printf conditions."""

    stmt_type: type = Stmt
    noun = ""

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        for m in ctx.circuit.modules.values():
            env = _literal_env(m)
            for s in walk_stmts(m.body):
                if not isinstance(s, self.stmt_type):
                    continue
                cond = _fold(s.cond, env)
                if not isinstance(cond, Literal):
                    continue
                self.report(s, bool(cond.value), m.name, out)

    def report(
        self, s: Stmt, always: bool, module: str, out: DiagnosticCollector
    ) -> None:
        raise NotImplementedError


class ConstStopRule(_ConstCondRule):
    rule_id = "const-stop"
    description = "stop condition folds to a constant"
    stmt_type = Stop

    def report(self, s, always, module, out):
        msg = (
            "stop condition is always true; simulation halts at the "
            "first clock edge"
            if always
            else "stop condition is always false; the stop never fires"
        )
        out.warning(self.rule_id, msg, module=module, location=s.info)


class ConstPrintfRule(_ConstCondRule):
    rule_id = "const-printf"
    description = "printf condition folds to a constant"
    stmt_type = Printf

    def report(self, s, always, module, out):
        msg = (
            "printf condition is always true; prints every cycle"
            if always
            else "printf condition is always false; never prints"
        )
        out.info(self.rule_id, msg, module=module, location=s.info)


class ConstMuxRule(Rule):
    """Mux selects that fold to a constant: one input is unreachable and
    the mux is an obfuscated wire."""

    rule_id = "const-mux"
    description = "mux select is constant; one input is unreachable"

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        for m in ctx.circuit.modules.values():
            env = _literal_env(m)
            for s in walk_stmts(m.body):
                info = getattr(s, "info", UNKNOWN)
                for e in _stmt_reads(s):
                    for node in walk_expr(e):
                        if not (
                            isinstance(node, PrimOp) and node.op == "mux"
                        ):
                            continue
                        sel = _fold(node.args[0], env)
                        if not isinstance(sel, Literal):
                            continue
                        arm = "false" if sel.value else "true"
                        out.warning(
                            self.rule_id,
                            f"mux select {node.args[0]} is constant "
                            f"({sel.value}); the {arm} input is "
                            f"unreachable",
                            module=m.name,
                            location=info,
                        )


def default_rules() -> list[Rule]:
    """The built-in rule set, in report-stable order."""
    return [
        CombCycleRule(),
        UndrivenRule(),
        UnusedSignalRule(),
        WidthTruncRule(),
        ConstWhenRule(),
        MultiDrivenRule(),
        UninitRegRule(),
        ConstStopRule(),
        ConstPrintfRule(),
        ConstMuxRule(),
    ]


ALL_RULES: tuple[type[Rule], ...] = (
    CombCycleRule,
    UndrivenRule,
    UnusedSignalRule,
    WidthTruncRule,
    ConstWhenRule,
    MultiDrivenRule,
    UninitRegRule,
    ConstStopRule,
    ConstPrintfRule,
    ConstMuxRule,
)
