"""The lint engine: runs pluggable rules over a circuit, collecting all
findings.

A :class:`Linter` holds an ordered list of :class:`Rule` objects and runs
them against a :class:`LintContext` — a lazy view of the circuit at the
lowering stages rules care about (as-given, type-lowered, fully lowered).
Stages are computed at most once and a stage that fails to lower degrades
to an informational diagnostic instead of aborting the run, so a
form-broken design still gets every finding the remaining rules can
produce.

The form checkers (``repro.ir.passes.check``) emit through the same
diagnostic types; ``Linter.lint`` includes their findings by default so
``repro lint`` shows form errors and style findings in one sorted report.

The compile-time gate (:func:`gate_circuit`, driven by
``Simulator(strict=...)`` and ``$REPRO_LINT``) turns findings into a
:class:`LintWarning` or — for error severity under ``"error"`` mode — a
raised :class:`LintError`.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field

from ..ir.debug import DebugInfo
from ..ir.stmt import Circuit, Conditionally, DefRegister, DefWire, walk_stmts
from .diagnostic import (
    Diagnostic,
    DiagnosticCollector,
    Severity,
    format_diagnostics,
    has_errors,
)

FORM_HIGH = "high"
FORM_LOW = "low"

GATE_OFF = "off"
GATE_WARN = "warn"
GATE_ERROR = "error"


class LintError(Exception):
    """Raised by the ``error`` gate mode when lint finds error-severity
    diagnostics.  ``diagnostics`` carries the full batch."""

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class LintWarning(UserWarning):
    """Emitted by the ``warn`` gate mode; message is the formatted report."""


def detect_form(circuit: Circuit) -> str:
    """Best-effort guess whether ``circuit`` is High or Low form.

    ``when`` blocks or aggregate-typed declarations only exist in High
    form.  A ground-typed, when-free circuit is indistinguishable — callers
    that know the provenance (``Simulator`` holds High, the console holds
    Low) should pass ``form=`` explicitly.
    """
    for m in circuit.modules.values():
        if any(not p.typ.is_ground() for p in m.ports):
            return FORM_HIGH
        for s in walk_stmts(m.body):
            if isinstance(s, Conditionally):
                return FORM_HIGH
            if isinstance(s, (DefWire, DefRegister)) and not s.typ.is_ground():
                return FORM_HIGH
    return FORM_LOW


_UNSET = object()


@dataclass
class LintContext:
    """Lazy lowered views of the circuit under lint.

    Rules request the stage they need; each stage lowers at most once.  A
    stage that raises records one ``lowering-failed`` info diagnostic (the
    underlying defect is reported by the form checkers) and every dependent
    rule silently gets ``None``.
    """

    circuit: Circuit
    form: str
    _debug: DebugInfo = field(default_factory=DebugInfo)
    _typed: object = _UNSET
    _low: object = _UNSET
    _failures: list[Diagnostic] = field(default_factory=list)

    def typed(self) -> Circuit | None:
        """The circuit after ``lower_types`` (ground types, whens intact).
        For a Low-form input this is the circuit itself."""
        if self._typed is _UNSET:
            if self.form == FORM_LOW:
                self._typed = self.circuit
            else:
                from ..ir.passes.lower_types import lower_types

                try:
                    self._typed = lower_types(self.circuit, self._debug)
                except Exception as exc:
                    self._typed = None
                    self._record_failure("lower_types", exc)
        return self._typed  # type: ignore[return-value]

    def low(self) -> Circuit | None:
        """The fully lowered circuit (``lower_types`` + ``expand_whens``,
        unoptimized).  For a Low-form input this is the circuit itself."""
        if self._low is _UNSET:
            if self.form == FORM_LOW:
                self._low = self.circuit
            else:
                typed = self.typed()
                if typed is None:
                    self._low = None
                else:
                    from ..ir.passes.expand_whens import expand_whens

                    try:
                        self._low, _lint = expand_whens(typed, self._debug)
                    except Exception as exc:
                        self._low = None
                        self._record_failure("expand_whens", exc)
        return self._low  # type: ignore[return-value]

    def _record_failure(self, stage: str, exc: Exception) -> None:
        self._failures.append(
            Diagnostic(
                rule="lowering-failed",
                severity=Severity.INFO,
                message=(
                    f"{stage} failed ({exc}); rules needing that stage were "
                    f"skipped"
                ),
            )
        )

    @property
    def failures(self) -> list[Diagnostic]:
        return self._failures


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` / ``description`` / ``severity_note`` (for
    the docs catalog) and implement :meth:`run`, emitting through the
    collector.  A rule that raises is downgraded to a ``lint-internal``
    warning by the :class:`Linter` — one broken rule never hides the rest.
    """

    rule_id: str = ""
    description: str = ""

    def run(self, ctx: LintContext, out: DiagnosticCollector) -> None:
        raise NotImplementedError


class Linter:
    """Runs a rule set over a circuit and returns *all* findings, sorted."""

    def __init__(self, rules=None):
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        self.rules = list(rules)

    def lint(
        self,
        circuit: Circuit,
        *,
        form: str | None = None,
        include_form_checks: bool = True,
    ) -> list[Diagnostic]:
        """Lint ``circuit`` and return every diagnostic, sorted by location.

        Args:
            circuit: the design to analyze (High or Low IR).
            form: ``"high"`` / ``"low"``; inferred via :func:`detect_form`
                when omitted.
            include_form_checks: also run the structural form checkers and
                merge their error-severity findings into the report.
        """
        if form is None:
            form = detect_form(circuit)
        if form not in (FORM_HIGH, FORM_LOW):
            raise ValueError(f"unknown form {form!r}")
        out = DiagnosticCollector()
        if include_form_checks:
            from ..ir.passes.check import (
                high_form_diagnostics,
                low_form_diagnostics,
            )

            checker = (
                high_form_diagnostics if form == FORM_HIGH
                else low_form_diagnostics
            )
            try:
                out.extend(checker(circuit))
            except Exception as exc:
                out.error("check-internal", f"form checker crashed: {exc!r}")
        ctx = LintContext(circuit=circuit, form=form)
        for rule in self.rules:
            try:
                rule.run(ctx, out)
            except Exception as exc:
                out.warning(
                    "lint-internal",
                    f"rule {rule.rule_id or type(rule).__name__!r} crashed: "
                    f"{exc!r}",
                )
        out.extend(ctx.failures)
        return sorted(out.diagnostics, key=Diagnostic.sort_key)


def lint_circuit(
    circuit: Circuit,
    *,
    rules=None,
    form: str | None = None,
    include_form_checks: bool = True,
) -> list[Diagnostic]:
    """One-shot convenience: ``Linter(rules).lint(circuit, ...)``."""
    return Linter(rules).lint(
        circuit, form=form, include_form_checks=include_form_checks
    )


def resolve_gate(strict=None) -> str:
    """Normalize a ``Simulator(strict=...)`` value / ``$REPRO_LINT`` to a
    gate mode: ``"off"`` | ``"warn"`` | ``"error"``.

    ``None`` reads ``$REPRO_LINT`` (default off).  Booleans map to
    ``error`` / ``off``; strings accept off/warn/error spellings
    (``strict`` is an alias for ``error``).
    """
    source = "strict"
    if strict is None:
        strict = os.environ.get("REPRO_LINT", GATE_OFF)
        source = "$REPRO_LINT"
    if strict is True:
        return GATE_ERROR
    if strict is False:
        return GATE_OFF
    text = str(strict).strip().lower()
    if text in ("", "0", "off", "none", "false", "no"):
        return GATE_OFF
    if text in ("warn", "warning", "1", "on", "true", "yes"):
        return GATE_WARN
    if text in ("error", "errors", "strict", "raise"):
        return GATE_ERROR
    raise ValueError(
        f"bad lint gate {strict!r} (from {source}): "
        f"expected off|warn|error (or bool)"
    )


def gate_circuit(
    circuit: Circuit,
    mode: str,
    *,
    form: str = FORM_HIGH,
    design: str = "",
) -> list[Diagnostic]:
    """The compile-time lint gate.

    ``off`` skips linting entirely.  ``warn`` lints and reports all
    findings as a single :class:`LintWarning`.  ``error`` additionally
    raises :class:`LintError` when any finding is error severity.
    Returns the diagnostics (empty under ``off`` or a clean design).
    """
    if mode == GATE_OFF:
        return []
    diags = lint_circuit(circuit, form=form)
    if not diags:
        return []
    label = f" for {design}" if design else ""
    report = format_diagnostics(diags)
    if mode == GATE_ERROR and has_errors(diags):
        raise LintError(f"lint failed{label}:\n{report}", diags)
    warnings.warn(
        f"lint found {len(diags)} diagnostic(s){label}:\n{report}",
        LintWarning,
        stacklevel=3,
    )
    return diags
