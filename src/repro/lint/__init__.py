"""Static analysis over the IR: structured diagnostics and a rule engine.

``repro.lint.diagnostic`` is the dependency-light reporting core shared
with the form checkers; the engine and rules load lazily (PEP 562) so that
``repro.ir.passes.check`` can import the diagnostic types without pulling
the whole pass pipeline into a cycle.

Typical use::

    from repro.lint import lint_circuit, format_diagnostics
    for d in lint_circuit(design.high):
        print(d.format())

See ``docs/lint.md`` for the rule catalog and severity policy.
"""

from .diagnostic import (
    Diagnostic,
    DiagnosticCollector,
    Related,
    Severity,
    diagnostics_to_json,
    format_diagnostics,
    has_errors,
    worst_severity,
)

_ENGINE = (
    "FORM_HIGH",
    "FORM_LOW",
    "GATE_ERROR",
    "GATE_OFF",
    "GATE_WARN",
    "LintContext",
    "LintError",
    "LintWarning",
    "Linter",
    "Rule",
    "detect_form",
    "gate_circuit",
    "lint_circuit",
    "resolve_gate",
)
_RULES = ("ALL_RULES", "default_rules")

__all__ = [
    "Diagnostic",
    "DiagnosticCollector",
    "Related",
    "Severity",
    "diagnostics_to_json",
    "format_diagnostics",
    "has_errors",
    "worst_severity",
    *_ENGINE,
    *_RULES,
]


def __getattr__(name: str):
    if name in _ENGINE:
        from . import engine

        return getattr(engine, name)
    if name in _RULES:
        from . import rules

        return getattr(rules, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
