"""Command-line interface.

``hgdb-py`` drives the debugger from a shell, the workflow a hardware
engineer would actually use with trace files and symbol tables on disk::

    hgdb-py replay run.vcd symbols.db          # offline debugging session
    hgdb-py info symbols.db                    # inspect a symbol table
    hgdb-py vcd-info run.vcd                   # inspect a trace

Also usable as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(args) -> int:
    from .symtable import SQLiteSymbolTable

    st = SQLiteSymbolTable(args.symbols)
    print(f"top module : {st.top_name()}")
    print(f"debug mode : {st.attribute('debug_mode') == '1'}")
    insts = st.instances()
    print(f"instances  : {len(insts)}")
    for inst in insts[: args.limit]:
        gen = st.generator_variables(inst.id)
        print(f"  {inst.name}  (module {inst.module}, {len(gen)} generator vars)")
    bps = st.all_breakpoints()
    print(f"breakpoints: {len(bps)}")
    for f in st.filenames():
        lines = st.breakpoint_lines(f)
        print(f"  {f}: {len(lines)} breakable lines ({lines[0]}..{lines[-1]})")
    return 0


def _cmd_vcd_info(args) -> int:
    from .trace import parse_vcd_file

    vcd = parse_vcd_file(args.vcd)
    clock = vcd.find_clock()
    print(f"signals  : {len(vcd.by_path)}")
    print(f"end time : {vcd.end_time}")
    if clock is not None:
        posedges = sum(1 for v in clock.values if v == 1)
        print(f"clock    : {clock.path} ({posedges} rising edges)")
    scopes = list(vcd.root_scopes)
    while scopes:
        scope = scopes.pop(0)
        print(f"  scope {scope.path}: {len(scope.signals)} signals")
        scopes.extend(scope.children)
    return 0


def _cmd_replay(args) -> int:
    from .client import ConsoleDebugger
    from .core import Runtime
    from .symtable import SQLiteSymbolTable
    from .trace import ReplayEngine

    replay = ReplayEngine.from_file(args.vcd, args.clock)
    symtable = SQLiteSymbolTable(args.symbols)
    runtime = Runtime(replay, symtable)

    script = None
    if args.command:
        script = [c.strip() for c in args.command.split(";") if c.strip()]
    debugger = ConsoleDebugger(runtime, script=script, echo=True)
    runtime.attach()

    print(f"replaying {args.vcd}: {replay.n_cycles} cycles")
    print(f"symbol table top: {symtable.top_name()}")
    for pre in args.breakpoint or []:
        debugger.execute(f"b {pre}")
    replay.run()
    print(f"replay finished at cycle {replay.get_time()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hgdb-py",
        description="source-level debugging for hardware generators",
    )
    sub = parser.add_subparsers(dest="command_name", required=True)

    p_info = sub.add_parser("info", help="inspect a symbol table")
    p_info.add_argument("symbols", help="SQLite symbol table path")
    p_info.add_argument("--limit", type=int, default=20, help="max instances shown")
    p_info.set_defaults(fn=_cmd_info)

    p_vcd = sub.add_parser("vcd-info", help="inspect a VCD trace")
    p_vcd.add_argument("vcd", help="VCD file path")
    p_vcd.set_defaults(fn=_cmd_vcd_info)

    p_rep = sub.add_parser("replay", help="debug a captured trace")
    p_rep.add_argument("vcd", help="VCD file path")
    p_rep.add_argument("symbols", help="SQLite symbol table path")
    p_rep.add_argument("--clock", help="full clock path (auto-detected otherwise)")
    p_rep.add_argument(
        "-b", "--breakpoint", action="append",
        help="breakpoint FILE:LINE to insert before replay (repeatable)",
    )
    p_rep.add_argument(
        "-c", "--command",
        help="semicolon-separated debugger commands (otherwise interactive)",
    )
    p_rep.set_defaults(fn=_cmd_replay)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
