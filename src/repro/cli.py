"""Command-line interface.

``hgdb-py`` drives the debugger from a shell, the workflow a hardware
engineer would actually use with trace files and symbol tables on disk::

    hgdb-py replay run.vcd symbols.db          # offline debugging session
    hgdb-py info symbols.db                    # inspect a symbol table
    hgdb-py vcd-info run.vcd                   # inspect a trace
    hgdb-py shard pkg.mod:factory -b f.py:42   # parallel seed sweep
    hgdb-py lint pkg.mod:factory --json        # static analysis gate
    hgdb-py stats pkg.mod:factory              # profile one shard run
    hgdb-py hub serve pkg.mod:factory          # multi-session debug server
    hgdb-py hub attach localhost:9000 -b f.py:42 -c "c; p out; q"

Observability (``repro.obs``, see docs/observability.md): ``stats`` runs
one instrumented shard and prints the metric catalog; ``shard
--trace-out t.json`` records a merged Chrome trace (coordinator + every
worker) loadable in Perfetto, and ``--prometheus m.prom`` writes the
aggregated metrics in text exposition format.

Also usable as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(args) -> int:
    from .symtable import SQLiteSymbolTable

    st = SQLiteSymbolTable(args.symbols)
    print(f"top module : {st.top_name()}")
    print(f"debug mode : {st.attribute('debug_mode') == '1'}")
    insts = st.instances()
    print(f"instances  : {len(insts)}")
    for inst in insts[: args.limit]:
        gen = st.generator_variables(inst.id)
        print(f"  {inst.name}  (module {inst.module}, {len(gen)} generator vars)")
    bps = st.all_breakpoints()
    print(f"breakpoints: {len(bps)}")
    for f in st.filenames():
        lines = st.breakpoint_lines(f)
        print(f"  {f}: {len(lines)} breakable lines ({lines[0]}..{lines[-1]})")
    return 0


def _cmd_vcd_info(args) -> int:
    from .trace import parse_vcd_file

    vcd = parse_vcd_file(args.vcd)
    clock = vcd.find_clock()
    print(f"signals  : {len(vcd.by_path)}")
    print(f"end time : {vcd.end_time}")
    if clock is not None:
        posedges = sum(1 for v in clock.values if v == 1)
        print(f"clock    : {clock.path} ({posedges} rising edges)")
    scopes = list(vcd.root_scopes)
    while scopes:
        scope = scopes.pop(0)
        print(f"  scope {scope.path}: {len(scope.signals)} signals")
        scopes.extend(scope.children)
    return 0


def _cmd_replay(args) -> int:
    from .client import ConsoleDebugger
    from .core import Runtime
    from .symtable import SQLiteSymbolTable
    from .trace import ReplayEngine

    replay = ReplayEngine.from_file(args.vcd, args.clock)
    symtable = SQLiteSymbolTable(args.symbols)
    runtime = Runtime(replay, symtable)

    script = None
    if args.command:
        script = [c.strip() for c in args.command.split(";") if c.strip()]
    debugger = ConsoleDebugger(runtime, script=script, echo=True)
    runtime.attach()

    print(f"replaying {args.vcd}: {replay.n_cycles} cycles")
    print(f"symbol table top: {symtable.top_name()}")
    print(replay.timeline.describe())
    for pre in args.breakpoint or []:
        debugger.execute(f"b {pre}")
    replay.run()
    print(f"replay finished at cycle {replay.get_time()}")
    return 0


def _parse_location(text: str):
    """Split ``FILE:LINE[ if COND]`` into (filename, line, condition)."""
    location, _, condition = text.partition(" if ")
    filename, _, line_s = location.strip().rpartition(":")
    if not filename:
        raise ValueError(f"expected FILE:LINE[ if COND], got {text!r}")
    return filename, int(line_s), (condition.strip() or None)


def load_design_factory(spec: str):
    """Resolve a ``MODULE:CALLABLE`` design factory — the one import
    helper every factory-taking subcommand (``lint``/``shard``/``stats``/
    ``hub``) shares, so the error messages stay uniform.  Returns the
    callable, or prints an error and returns None."""
    import importlib

    mod_name, _, attr = spec.partition(":")
    if not attr:
        print(
            f"error: factory must be MODULE:CALLABLE, got {spec!r}",
            file=sys.stderr,
        )
        return None
    try:
        module = importlib.import_module(mod_name)
        return getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        print(f"error: cannot load factory {spec!r}: {exc}", file=sys.stderr)
        return None


def _cmd_lint(args) -> int:
    import json

    from . import hgf
    from .lint import (
        Severity,
        diagnostics_to_json,
        format_diagnostics,
        has_errors,
        lint_circuit,
    )

    try:
        threshold = Severity.parse(args.min_severity)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    exit_code = 0
    documents = []
    for spec in args.factory:
        factory = load_design_factory(spec)
        if factory is None:
            return 2
        try:
            circuit = hgf.elaborate(factory())
        except Exception as exc:
            print(f"error: elaborating {spec!r} failed: {exc}",
                  file=sys.stderr)
            return 2
        diags = lint_circuit(circuit, form="high")
        if has_errors(diags):
            exit_code = 1
        shown = [d for d in diags if d.severity >= threshold]
        if args.json:
            documents.append(
                diagnostics_to_json(shown, design=circuit.name)
            )
        elif shown:
            print(f"{circuit.name}: {len(shown)} diagnostic(s)")
            print(format_diagnostics(shown))
        else:
            print(f"{circuit.name}: clean")
    if args.json:
        doc = (
            documents[0]
            if len(documents) == 1
            else {"version": 1, "designs": documents}
        )
        print(json.dumps(doc, indent=2))
    return exit_code


def _cmd_shard(args) -> int:
    import json

    import repro
    from .hub import SessionOptions
    from .shard import (
        BreakpointSpec,
        RetryPolicy,
        ShardSession,
        WatchSpec,
    )

    factory = load_design_factory(args.factory)
    if factory is None:
        return 2
    design = repro.compile(factory(), debug=args.debug)

    try:
        breakpoints = []
        for spec in args.breakpoint or []:
            filename, line, condition = _parse_location(spec)
            breakpoints.append(
                BreakpointSpec(filename, line, condition=condition)
            )
        watchpoints = []
        for spec in args.watch or []:
            name, _, condition = spec.partition(" if ")
            watchpoints.append(
                WatchSpec(name.strip(), condition=condition.strip() or None)
            )
        overrides = {}
        for spec in args.override or []:
            name, eq, value = spec.partition("=")
            if not eq or not name:
                raise ValueError(f"expected NAME=VALUE, got {spec!r}")
            overrides[name] = int(value, 0)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def on_event(ev):
        if args.verbose and ev["event"] == "progress":
            print(
                f"  shard {ev['shard']}: {ev['done']}/{ev['total']} cycles, "
                f"{ev['hits']} hit(s)"
            )

    # Exporter flags imply the depth they need; an explicit --obs wins.
    obs_mode = args.obs
    if obs_mode is None and args.trace_out:
        obs_mode = "trace"
    elif obs_mode is None and args.prometheus:
        obs_mode = "metrics"
    if args.trace_out and obs_mode != "trace":
        print(
            f"error: --trace-out needs --obs trace, not {obs_mode!r}",
            file=sys.stderr,
        )
        return 2

    retry = RetryPolicy(max_attempts=max(1, args.retries))
    with ShardSession(
        design, workers=args.workers,
        options=SessionOptions(obs=obs_mode),
    ) as session:
        report = session.sweep(
            shards=args.shards,
            cycles=args.cycles,
            seed_base=args.seed_base,
            breakpoints=breakpoints,
            watchpoints=watchpoints,
            overrides=overrides,
            hit_limit=args.hit_limit,
            on_event=on_event if args.verbose else None,
            timeout=args.timeout,
            timeline_cycles=args.timeline,
            retry=retry,
            deadline=args.deadline,
            worlds_per_shard=args.worlds,
        )
    print(report.summary())
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report.to_json(), f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")
    if args.trace_out:
        report.write_chrome_trace(args.trace_out)
        print(f"wrote {args.trace_out} ({len(report.trace_spans())} span(s))")
    if args.prometheus:
        with open(args.prometheus, "w") as f:
            f.write(report.prometheus())
        print(f"wrote {args.prometheus}")
    return 0 if report.ok else 1


def _cmd_stats(args) -> int:
    import json

    import repro
    from .obs import format_metrics, make_obs, write_chrome_trace, write_prometheus
    from .shard import ShardSpec
    from .shard.worker import run_shard
    from .symtable import SQLiteSymbolTable
    from .symtable.writer import write_symbol_table

    factory = load_design_factory(args.factory)
    if factory is None:
        return 2
    design = repro.compile(factory(), debug=args.debug)
    symtable = SQLiteSymbolTable(write_symbol_table(design))
    mode = "trace" if args.trace_out else "metrics"
    obs = make_obs(mode, proc="stats", labels={"shard": "0"})
    spec = ShardSpec(
        shard_id=0, seed=args.seed, cycles=args.cycles,
        timeline_cycles=args.timeline,
    )
    result = run_shard(design.low, symtable, spec, obs=obs)
    snapshot = obs.metrics.snapshot()
    print(
        f"{design.name}: {result.cycles} cycles in {result.wall_time_s:.3f}s "
        f"(seed {spec.seed})"
    )
    print(format_metrics(snapshot))
    if args.json:
        with open(args.json, "w") as f:
            json.dump(snapshot, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")
    if args.trace_out:
        write_chrome_trace(args.trace_out, obs.tracer.spans)
        print(f"wrote {args.trace_out} ({len(obs.tracer.spans)} span(s))")
    if args.prometheus:
        write_prometheus(args.prometheus, snapshot)
        print(f"wrote {args.prometheus}")
    return 0


def _cmd_hub_serve(args) -> int:
    import time

    import repro
    from .hub import DebugHub, SessionOptions

    factory = load_design_factory(args.factory)
    if factory is None:
        return 2
    design = repro.compile(factory(), debug=args.debug)
    options = SessionOptions(
        snapshots=args.snapshots, obs=args.obs, strict=args.strict
    )
    hub = DebugHub(
        design, host=args.host, port=args.port,
        idle_ttl=args.idle_exit, options=options,
    )
    host, port = hub.serve_background()
    print(f"hub serving {design.name} on {host}:{port}")
    if args.address_file:
        with open(args.address_file, "w") as f:
            f.write(f"{host}:{port}\n")
    try:
        if args.serve_seconds is not None:
            # Bounded serving (tests, CI): hold the design hot for a
            # fixed window, then exit cleanly.
            time.sleep(args.serve_seconds)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        hub.close()
    return 0


def _cmd_hub_attach(args) -> int:
    from .client import ConsoleDebugger
    from .hub import HubClient

    host, _, port_s = args.address.rpartition(":")
    if not host:
        print(f"error: expected HOST:PORT, got {args.address!r}",
              file=sys.stderr)
        return 2
    script = None
    if args.command:
        script = [
            c.strip()
            for chunk in args.command
            for c in chunk.split(";")
            if c.strip()
        ]
    client = HubClient(host, int(port_s))
    try:
        hello = client.hello()
        session = client.attach(seed=args.seed, name=args.name)
        print(
            f"attached to {hello['design']} "
            f"({hello['sessions']} other session(s))"
        )
        debugger = ConsoleDebugger(session=session, script=script, echo=True)
        for pre in args.breakpoint or []:
            debugger.execute(f"b {pre}")
        stop = debugger.drive(args.cycles)
        if stop is None or stop.reason != "detached":
            # One-shot CLI attach: release the hub session instead of
            # leaving it parked for re-attach.
            session.detach()
        if stop is not None and stop.reason == "error":
            return 1
    finally:
        client.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hgdb-py",
        description="source-level debugging for hardware generators",
    )
    sub = parser.add_subparsers(dest="command_name", required=True)

    p_info = sub.add_parser("info", help="inspect a symbol table")
    p_info.add_argument("symbols", help="SQLite symbol table path")
    p_info.add_argument("--limit", type=int, default=20, help="max instances shown")
    p_info.set_defaults(fn=_cmd_info)

    p_vcd = sub.add_parser("vcd-info", help="inspect a VCD trace")
    p_vcd.add_argument("vcd", help="VCD file path")
    p_vcd.set_defaults(fn=_cmd_vcd_info)

    p_rep = sub.add_parser("replay", help="debug a captured trace")
    p_rep.add_argument("vcd", help="VCD file path")
    p_rep.add_argument("symbols", help="SQLite symbol table path")
    p_rep.add_argument("--clock", help="full clock path (auto-detected otherwise)")
    p_rep.add_argument(
        "-b", "--breakpoint", action="append",
        help="breakpoint FILE:LINE to insert before replay (repeatable)",
    )
    p_rep.add_argument(
        "-c", "--command",
        help="semicolon-separated debugger commands (otherwise interactive)",
    )
    p_rep.set_defaults(fn=_cmd_replay)

    p_lint = sub.add_parser(
        "lint",
        help="statically analyze designs and report all diagnostics",
    )
    p_lint.add_argument(
        "factory",
        nargs="+",
        help="design factories as MODULE:CALLABLE returning an hgf.Module "
             "(repeatable)",
    )
    p_lint.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable diagnostic document instead of "
             "file:line text (schema in docs/lint.md)",
    )
    p_lint.add_argument(
        "--min-severity", default="info", metavar="LEVEL",
        help="hide findings below this severity (info|warning|error); "
             "the exit code still reflects all error findings",
    )
    p_lint.set_defaults(fn=_cmd_lint)

    p_shard = sub.add_parser(
        "shard",
        aliases=["sweep"],
        help="run N design shards in parallel and aggregate debugger hits "
             "(alias: sweep)",
    )
    p_shard.add_argument(
        "factory",
        help="design factory as MODULE:CALLABLE returning an hgf.Module",
    )
    p_shard.add_argument("--shards", type=int, default=4, help="shard count")
    p_shard.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 0 = inline)",
    )
    p_shard.add_argument(
        "--cycles", type=int, default=1000, help="cycles per shard"
    )
    p_shard.add_argument(
        "--seed-base", type=int, default=0,
        help="shard i runs seed SEED_BASE+i",
    )
    p_shard.add_argument(
        "--worlds", type=int, default=0, metavar="N",
        help="pack N consecutive shards per worker as scenario worlds of "
             "one vectorized many-worlds simulator (needs numpy; groups "
             "that arm breakpoints/watchpoints run their members "
             "sequentially instead).  Results are identical either way; "
             "0 = one shard per worker",
    )
    p_shard.add_argument(
        "-b", "--breakpoint", action="append",
        help="breakpoint 'FILE:LINE[ if COND]' armed in every shard "
             "(repeatable)",
    )
    p_shard.add_argument(
        "-w", "--watch", action="append",
        help="watchpoint 'NAME[ if COND]' armed in every shard (repeatable)",
    )
    p_shard.add_argument(
        "-o", "--override", action="append",
        help="hold input NAME=VALUE constant in every shard (repeatable)",
    )
    p_shard.add_argument(
        "--hit-limit", type=int, default=None,
        help="detach a shard's debugger after this many hits",
    )
    p_shard.add_argument(
        "--timeout", type=float, default=None,
        help="wall-clock budget for the whole sweep (s); on expiry "
             "workers are terminated and the sweep aborts",
    )
    p_shard.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts per shard before degrading to inline execution: "
             "crashed, hung, or wire-corrupted workers are relaunched "
             "with backoff (default: 3)",
    )
    p_shard.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-shard attempt deadline (s): a worker exceeding it is "
             "terminated (then killed) and the attempt retried",
    )
    p_shard.add_argument(
        "--timeline", type=int, default=0, metavar="N",
        help="stream each shard's last N cycles of compressed state "
             "history so replica divergence is localized to the first "
             "divergent cycle and signal (0 = off)",
    )
    p_shard.add_argument(
        "--json", help="also write the aggregated report as JSON"
    )
    p_shard.add_argument(
        "--obs", choices=["off", "metrics", "trace"], default=None,
        help="observability depth (repro.obs) for the coordinator and "
             "every worker; default: $REPRO_OBS, then off.  Implied by "
             "--trace-out (trace) and --prometheus (metrics)",
    )
    p_shard.add_argument(
        "--trace-out", metavar="PATH",
        help="write the sweep's merged Chrome trace (coordinator + every "
             "worker on one timeline; open in Perfetto)",
    )
    p_shard.add_argument(
        "--prometheus", metavar="PATH",
        help="write the aggregated metrics in Prometheus text format",
    )
    p_shard.add_argument(
        "--debug", action="store_true",
        help="compile in debug mode (-O0 analog; keeps every variable)",
    )
    p_shard.add_argument(
        "-v", "--verbose", action="store_true",
        help="print per-shard progress events as they stream in",
    )
    p_shard.set_defaults(fn=_cmd_shard)

    p_hub = sub.add_parser(
        "hub",
        help="persistent multi-session debug server (docs/hub.md)",
    )
    hub_sub = p_hub.add_subparsers(dest="hub_command", required=True)

    p_serve = hub_sub.add_parser(
        "serve",
        help="compile a design once and serve debug sessions over TCP",
    )
    p_serve.add_argument(
        "factory",
        help="design factory as MODULE:CALLABLE returning an hgf.Module",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: an ephemeral port, printed on startup)",
    )
    p_serve.add_argument(
        "--address-file", metavar="PATH",
        help="write the bound HOST:PORT to this file once listening "
             "(lets scripts attach to an ephemeral port)",
    )
    p_serve.add_argument(
        "--idle-exit", type=float, default=None, metavar="S",
        help="evict sessions idle for S seconds (default: keep forever)",
    )
    p_serve.add_argument(
        "--serve-seconds", type=float, default=None, metavar="S",
        help="serve for S seconds then exit (default: until interrupted)",
    )
    p_serve.add_argument(
        "--snapshots", type=int, default=0, metavar="N",
        help="per-session retained timeline entries (enables reverse "
             "debugging across cycles)",
    )
    p_serve.add_argument(
        "--obs", choices=["off", "metrics", "trace"], default=None,
        help="hub observability depth (repro.obs); default: $REPRO_OBS",
    )
    p_serve.add_argument(
        "--strict", choices=["off", "warning", "error"], default=None,
        help="lint gate severity at hub compile (default: error)",
    )
    p_serve.add_argument(
        "--debug", action="store_true",
        help="compile in debug mode (-O0 analog; keeps every variable)",
    )
    p_serve.set_defaults(fn=_cmd_hub_serve)

    p_attach = hub_sub.add_parser(
        "attach", help="attach a console session to a running hub"
    )
    p_attach.add_argument("address", help="hub HOST:PORT")
    p_attach.add_argument(
        "-b", "--breakpoint", action="append",
        help="breakpoint FILE:LINE to insert before running (repeatable)",
    )
    p_attach.add_argument(
        "-c", "--command", action="append",
        help="debugger command to run at stops; repeatable, and each "
             "occurrence may hold several separated by ';' "
             "(otherwise interactive)",
    )
    p_attach.add_argument(
        "--seed", type=int, default=None,
        help="drive the session with the deterministic seed-N stimulus",
    )
    p_attach.add_argument(
        "--cycles", type=int, default=1000, help="cycles to run"
    )
    p_attach.add_argument("--name", default=None, help="session name")
    p_attach.set_defaults(fn=_cmd_hub_attach)

    p_stats = sub.add_parser(
        "stats",
        help="run one instrumented shard and print its metric catalog",
    )
    p_stats.add_argument(
        "factory",
        help="design factory as MODULE:CALLABLE returning an hgf.Module",
    )
    p_stats.add_argument(
        "--cycles", type=int, default=1000, help="cycles to run"
    )
    p_stats.add_argument("--seed", type=int, default=0, help="stimulus seed")
    p_stats.add_argument(
        "--timeline", type=int, default=0, metavar="N",
        help="also retain N cycles of compressed history (exercises the "
             "timeline metrics)",
    )
    p_stats.add_argument(
        "--json", metavar="PATH", help="write the metrics snapshot as JSON"
    )
    p_stats.add_argument(
        "--trace-out", metavar="PATH",
        help="record spans too and write a Chrome trace (Perfetto)",
    )
    p_stats.add_argument(
        "--prometheus", metavar="PATH",
        help="write the snapshot in Prometheus text format",
    )
    p_stats.add_argument(
        "--debug", action="store_true",
        help="compile in debug mode (-O0 analog; keeps every variable)",
    )
    p_stats.set_defaults(fn=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
