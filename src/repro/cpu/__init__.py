"""repro.cpu — the RISC-V CPU substrate (the RocketChip stand-in).

RV32I+M single-cycle core written in ``repro.hgf``, a two-pass assembler,
a golden-model ISS, and the ten Fig. 5 benchmark programs.
"""

from .assembler import AsmError, AsmResult, Assembler, assemble
from .cpu import Alu, RV32Core
from .golden import TOHOST_ADDR, Iss, IssError, IssState, run_program
from .harness import RtlRun, build_rtl, run_on_iss, run_on_rtl, verify_benchmark
from .programs import Benchmark, benchmark_by_name, build_suite

__all__ = [
    "Alu",
    "AsmError",
    "AsmResult",
    "Assembler",
    "Benchmark",
    "Iss",
    "IssError",
    "IssState",
    "RV32Core",
    "RtlRun",
    "TOHOST_ADDR",
    "assemble",
    "benchmark_by_name",
    "build_rtl",
    "build_suite",
    "run_on_iss",
    "run_on_rtl",
    "run_program",
    "verify_benchmark",
]
