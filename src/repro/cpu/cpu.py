"""A single-cycle RV32I(+M) CPU written in the generator framework.

This is the reproduction's RocketChip stand-in (see DESIGN.md): a complete
synchronous CPU whose simulation workload exercises the hgdb clock-edge
callback exactly like the paper's Fig. 5 benchmark — and whose generator
source is itself debuggable with hgdb (``examples/cpu_debugging.py``).

Memory map (word-addressed unified memory):

* ``0x0000 .. 0x3FFF``  program + static data (16 KiB)
* ``0x4000``            ``tohost``: a store here reports the result checksum
* ``0x4004 .. 0x7FFF``  heap / stack (sp conventionally starts at 0x7FF0)
"""

from __future__ import annotations

from .. import hgf
from .golden import TOHOST_ADDR

#: ALU operation encodings (port ``op`` of :class:`Alu`).
ALU_ADD, ALU_SUB, ALU_SLL, ALU_SLT, ALU_SLTU = 0, 1, 2, 3, 4
ALU_XOR, ALU_SRL, ALU_SRA, ALU_OR, ALU_AND = 5, 6, 7, 8, 9
ALU_MUL, ALU_MULH, ALU_MULHSU, ALU_MULHU = 10, 11, 12, 13
ALU_DIV, ALU_DIVU, ALU_REM, ALU_REMU = 14, 15, 16, 17


class Alu(hgf.Module):
    """Combinational ALU covering RV32I ops plus the M extension."""

    def __init__(self):
        super().__init__()
        self.a = self.input("a", 32)
        self.b = self.input("b", 32)
        self.op = self.input("op", 5)
        self.out = self.output("out", 32)

        a, b, op = self.a, self.b, self.op
        shamt = self.node("shamt", b[4:0])
        a_s = a.as_sint()
        b_s = b.as_sint()

        add = self.node("add_r", (a + b)[31:0])
        sub = self.node("sub_r", (a - b)[31:0])
        slt = self.node("slt_r", (a_s < b_s).pad(32))
        sltu = self.node("sltu_r", (a < b).pad(32))
        sll = self.node("sll_r", a << shamt)
        srl = self.node("srl_r", a >> shamt)
        sra = self.node("sra_r", (a_s >> shamt).as_uint())
        mul_full = self.node("mul_full", (a_s * b_s).as_uint())
        mulu_full = self.node("mulu_full", (a * b))
        mulsu_full = self.node("mulsu_full", (a_s * b.pad(33).as_sint()).as_uint())

        # RISC-V division semantics: x/0 = -1, x%0 = x; signed overflow
        # (-2^31 / -1) wraps naturally through two's complement masking.
        div = hgf.mux(b == 0, self.lit(0xFFFFFFFF, 32), (a_s // b_s).as_uint()[31:0])
        divu = hgf.mux(b == 0, self.lit(0xFFFFFFFF, 32), (a // b)[31:0])
        rem = hgf.mux(b == 0, a, (a_s % b_s).as_uint()[31:0])
        remu = hgf.mux(b == 0, a, (a % b)[31:0])

        result = self.lit(0, 32)
        table = [
            (ALU_ADD, add), (ALU_SUB, sub), (ALU_SLL, sll), (ALU_SLT, slt),
            (ALU_SLTU, sltu), (ALU_XOR, (a ^ b)), (ALU_SRL, srl),
            (ALU_SRA, sra), (ALU_OR, (a | b)), (ALU_AND, (a & b)),
            (ALU_MUL, mul_full[31:0]), (ALU_MULH, mul_full[63:32]),
            (ALU_MULHSU, mulsu_full[63:32]), (ALU_MULHU, mulu_full[63:32]),
            (ALU_DIV, div), (ALU_DIVU, divu), (ALU_REM, rem), (ALU_REMU, remu),
        ]
        for code, value in table:
            result = hgf.mux(op == code, value, result)
        self.out <<= result


class RV32Core(hgf.Module):
    """Single-cycle RV32I+M core with a unified instruction/data memory."""

    def __init__(self, program: list[int], mem_words: int = 8192):
        super().__init__()
        self.isa = "RV32IM"
        self.mem_words = mem_words
        if len(program) > mem_words:
            raise ValueError(
                f"program ({len(program)} words) exceeds memory ({mem_words})"
            )

        self.pc_out = self.output("pc_out", 32)
        self.tohost = self.output("tohost", 32)
        self.instret = self.output("instret", 32)

        mem = self.mem("mem", 32, mem_words, init=program)
        regs = self.mem("regs", 32, 32)
        pc = self.reg("pc", 32, init=0)
        tohost_r = self.reg("tohost_r", 32, init=0)
        instret_r = self.reg("instret_r", 32, init=0)

        # ---- fetch -----------------------------------------------------
        instr = self.node("instr", mem[pc >> 2])

        # ---- decode ----------------------------------------------------
        opcode = self.node("opcode", instr[6:0])
        rd = self.node("rd", instr[11:7])
        funct3 = self.node("funct3", instr[14:12])
        rs1 = self.node("rs1", instr[19:15])
        rs2 = self.node("rs2", instr[24:20])
        funct7 = self.node("funct7", instr[31:25])

        imm_i = self.node("imm_i", instr[31:20].as_sint().pad(32).as_uint())
        imm_s = self.node(
            "imm_s",
            hgf.cat(instr[31:25], instr[11:7]).as_sint().pad(32).as_uint(),
        )
        imm_b = self.node(
            "imm_b",
            hgf.cat(instr[31], instr[7], instr[30:25], instr[11:8], self.lit(0, 1))
            .as_sint().pad(32).as_uint(),
        )
        imm_u = self.node("imm_u", instr[31:12] << 12)
        imm_j = self.node(
            "imm_j",
            hgf.cat(instr[31], instr[19:12], instr[20], instr[30:21], self.lit(0, 1))
            .as_sint().pad(32).as_uint(),
        )

        is_lui = self.node("is_lui", opcode == 0b0110111)
        is_auipc = self.node("is_auipc", opcode == 0b0010111)
        is_jal = self.node("is_jal", opcode == 0b1101111)
        is_jalr = self.node("is_jalr", opcode == 0b1100111)
        is_branch = self.node("is_branch", opcode == 0b1100011)
        is_load = self.node("is_load", opcode == 0b0000011)
        is_store = self.node("is_store", opcode == 0b0100011)
        is_imm = self.node("is_imm", opcode == 0b0010011)
        is_reg = self.node("is_reg", opcode == 0b0110011)
        is_system = self.node("is_system", opcode == 0b1110011)

        # ---- register read (x0 hard-wired to zero) -----------------------
        rs1_val = self.node("rs1_val", hgf.mux(rs1 == 0, self.lit(0, 32), regs[rs1]))
        rs2_val = self.node("rs2_val", hgf.mux(rs2 == 0, self.lit(0, 32), regs[rs2]))

        # ---- ALU operation select ------------------------------------------
        is_m = self.node("is_m", is_reg & (funct7 == 0b0000001))
        alu_op = self.wire("alu_op", 5)
        alu_op <<= ALU_ADD
        with self.when(is_m == 1):
            # funct3 indexes the M-extension block contiguously.
            alu_op <<= funct3 + ALU_MUL
        with self.elsewhen((is_reg | is_imm) == 1):
            base = self.wire("alu_base", 5)
            base <<= ALU_ADD
            with self.when(funct3 == 0b000):
                # sub only for OP with funct7[5]; addi never subtracts
                base <<= hgf.mux((is_reg & funct7[5]) == 1, ALU_SUB, ALU_ADD)
            with self.elsewhen(funct3 == 0b001):
                base <<= ALU_SLL
            with self.elsewhen(funct3 == 0b010):
                base <<= ALU_SLT
            with self.elsewhen(funct3 == 0b011):
                base <<= ALU_SLTU
            with self.elsewhen(funct3 == 0b100):
                base <<= ALU_XOR
            with self.elsewhen(funct3 == 0b101):
                base <<= hgf.mux(funct7[5] == 1, ALU_SRA, ALU_SRL)
            with self.elsewhen(funct3 == 0b110):
                base <<= ALU_OR
            with self.otherwise():
                base <<= ALU_AND
            alu_op <<= base

        alu = self.instance("alu", Alu())
        alu.a <<= rs1_val
        alu.b <<= hgf.mux(is_imm == 1, imm_i, rs2_val)
        alu.op <<= alu_op
        alu_out = self.node("alu_out", alu.out)

        # ---- branch resolution ------------------------------------------------
        rs1_s = rs1_val.as_sint()
        rs2_s = rs2_val.as_sint()
        br_taken = self.wire("br_taken", 1)
        br_taken <<= 0
        with self.when(funct3 == 0b000):
            br_taken <<= rs1_val == rs2_val
        with self.elsewhen(funct3 == 0b001):
            br_taken <<= rs1_val != rs2_val
        with self.elsewhen(funct3 == 0b100):
            br_taken <<= rs1_s < rs2_s
        with self.elsewhen(funct3 == 0b101):
            br_taken <<= rs1_s >= rs2_s
        with self.elsewhen(funct3 == 0b110):
            br_taken <<= rs1_val < rs2_val
        with self.otherwise():
            br_taken <<= rs1_val >= rs2_val

        # ---- memory access ----------------------------------------------------
        mem_addr = self.node(
            "mem_addr",
            (rs1_val + hgf.mux(is_store == 1, imm_s, imm_i))[31:0],
        )
        load_val = self.node("load_val", mem[mem_addr >> 2])
        with self.when(is_store == 1):
            mem.write(mem_addr >> 2, rs2_val, en=self.lit(1, 1))
            with self.when(mem_addr == TOHOST_ADDR):
                tohost_r <<= rs2_val

        # ---- writeback ---------------------------------------------------------
        pc_plus4 = self.node("pc_plus4", (pc + 4)[31:0])
        wb_val = self.node(
            "wb_val",
            hgf.mux(
                is_lui == 1, imm_u,
                hgf.mux(
                    is_auipc == 1, (pc + imm_u)[31:0],
                    hgf.mux(
                        (is_jal | is_jalr) == 1, pc_plus4,
                        hgf.mux(is_load == 1, load_val, alu_out),
                    ),
                ),
            ),
        )
        reg_wen = self.node(
            "reg_wen",
            (is_lui | is_auipc | is_jal | is_jalr | is_load | is_imm | is_reg)
            & (rd != 0),
        )
        with self.when(reg_wen == 1):
            regs.write(rd, wb_val, en=self.lit(1, 1))

        # ---- next PC -------------------------------------------------------------
        next_pc = self.node(
            "next_pc",
            hgf.mux(
                is_jal == 1, (pc + imm_j)[31:0],
                hgf.mux(
                    is_jalr == 1, ((rs1_val + imm_i) & 0xFFFFFFFE)[31:0],
                    hgf.mux(
                        (is_branch & br_taken) == 1, (pc + imm_b)[31:0], pc_plus4
                    ),
                ),
            ),
        )
        pc <<= next_pc
        instret_r <<= (instret_r + 1)[31:0]

        # ---- halt / outputs ----------------------------------------------------
        self.stop(is_system == 1, 0)
        self.pc_out <<= pc
        self.tohost <<= tohost_r
        self.instret <<= instret_r
