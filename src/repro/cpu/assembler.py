"""A two-pass RV32 assembler.

Supports labels, decimal/hex immediates, ``.word`` data, ``%hi``/``%lo``
splitting via the ``li`` pseudo-instruction, comments (``#`` and ``//``),
and the usual pseudo-instructions (``li``, ``mv``, ``j``, ``call``,
``ret``, ``nop``, ``beqz``, ``bnez``, ``ble``, ``bgt``, ``not``, ``neg``,
``seqz``, ``snez``).

Branch/jump targets may be labels or absolute byte addresses.  Programs are
position 0-based: the CPU's reset PC is 0.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from . import isa
from .isa import EncodingError, REG_NAMES


class AsmError(Exception):
    """Raised with file/line context on assembly failures."""


@dataclass(slots=True)
class AsmResult:
    words: list[int]
    labels: dict[str, int]
    source_lines: list[tuple[int, str]] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.words)


_LINE_COMMENT = re.compile(r"(#|//).*$")


def _parse_reg(token: str) -> int:
    reg = REG_NAMES.get(token.strip().lower())
    if reg is None:
        raise AsmError(f"unknown register {token!r}")
    return reg


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AsmError(f"bad integer {token!r}") from exc


_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")


class Assembler:
    """Two-pass assembler: pass 1 sizes and collects labels, pass 2 encodes."""

    def __init__(self) -> None:
        self.labels: dict[str, int] = {}

    # -- public API ------------------------------------------------------

    def assemble(self, source: str) -> AsmResult:
        lines = self._clean(source)
        self.labels = {}
        self._measure(lines)
        words, src_map = self._encode(lines)
        return AsmResult(words, dict(self.labels), src_map)

    # -- pass 1 ------------------------------------------------------------

    def _clean(self, source: str) -> list[tuple[int, str]]:
        out = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            text = _LINE_COMMENT.sub("", raw).strip()
            if text:
                out.append((lineno, text))
        return out

    def _measure(self, lines: list[tuple[int, str]]) -> None:
        pc = 0
        for lineno, text in lines:
            while True:
                label, sep, rest = text.partition(":")
                if sep and re.fullmatch(r"[A-Za-z_.$][\w.$]*", label.strip()):
                    name = label.strip()
                    if name in self.labels:
                        raise AsmError(f"line {lineno}: duplicate label {name!r}")
                    self.labels[name] = pc
                    text = rest.strip()
                    if not text:
                        break
                    continue
                break
            if not text:
                continue
            pc += 4 * self._width(lineno, text)

    def _width(self, lineno: int, text: str) -> int:
        mnemonic = text.split(None, 1)[0].lower()
        if mnemonic == ".word":
            return len(text.split(None, 1)[1].split(","))
        if mnemonic == ".space":
            n = _parse_int(text.split(None, 1)[1])
            if n % 4:
                raise AsmError(f"line {lineno}: .space must be word aligned")
            return n // 4
        if mnemonic == "li":
            # Width must be identical in both passes: integer literals are
            # sized by value; label operands always use the wide (lui+addi)
            # form so forward references cannot shift later labels.
            args = text.split(None, 1)[1]
            parts = [p.strip() for p in args.split(",")]
            if len(parts) != 2:
                raise AsmError(f"line {lineno}: li needs 2 operands")
            try:
                value = int(parts[1], 0)
            except ValueError:
                return 2
            return 1 if -2048 <= value <= 2047 else 2
        if mnemonic == "call":
            return 1
        return 1

    # -- pass 2 -----------------------------------------------------------------

    def _encode(self, lines: list[tuple[int, str]]):
        words: list[int] = []
        src_map: list[tuple[int, str]] = []
        pc = 0
        for lineno, text in lines:
            while True:
                label, sep, rest = text.partition(":")
                if sep and re.fullmatch(r"[A-Za-z_.$][\w.$]*", label.strip()):
                    text = rest.strip()
                    if not text:
                        break
                    continue
                break
            if not text:
                continue
            try:
                encoded = self._encode_one(text, pc)
            except (AsmError, EncodingError, KeyError, IndexError) as exc:
                raise AsmError(f"line {lineno}: {text!r}: {exc}") from exc
            for w in encoded:
                words.append(w & 0xFFFFFFFF)
                src_map.append((lineno, text))
                pc += 4
        return words, src_map

    def _target(self, token: str, pc: int) -> int:
        """Branch/jump offset from a label or absolute address."""
        token = token.strip()
        if token in self.labels:
            return self.labels[token] - pc
        return _parse_int(token) - pc

    def _resolve(self, token: str) -> int:
        token = token.strip()
        if token in self.labels:
            return self.labels[token]
        return _parse_int(token)

    def _encode_one(self, text: str, pc: int) -> list[int]:
        mnemonic, _, rest = text.partition(" ")
        mnemonic = mnemonic.lower()
        args = [a.strip() for a in rest.split(",")] if rest.strip() else []

        if mnemonic == ".word":
            return [self._resolve(a) & 0xFFFFFFFF for a in args]
        if mnemonic == ".space":
            return [0] * (_parse_int(args[0]) // 4)

        # Pseudo-instructions.
        if mnemonic == "nop":
            return [isa.encode_i("addi", 0, 0, 0)]
        if mnemonic == "li":
            rd = _parse_reg(args[0])
            is_label = args[1].strip() in self.labels
            value = self._resolve(args[1]) & 0xFFFFFFFF
            value_s = value - (1 << 32) if value & 0x80000000 else value
            if not is_label and -2048 <= value_s <= 2047:
                return [isa.encode_i("addi", rd, 0, value_s)]
            upper = ((value + 0x800) >> 12) & 0xFFFFF
            lower = ((value & 0xFFF) + 0x800) % 0x1000 - 0x800
            return [
                isa.encode_u("lui", rd, upper),
                isa.encode_i("addi", rd, rd, lower),
            ]
        if mnemonic == "mv":
            return [isa.encode_i("addi", _parse_reg(args[0]), _parse_reg(args[1]), 0)]
        if mnemonic == "not":
            return [isa.encode_i("xori", _parse_reg(args[0]), _parse_reg(args[1]), -1)]
        if mnemonic == "neg":
            return [isa.encode_r("sub", _parse_reg(args[0]), 0, _parse_reg(args[1]))]
        if mnemonic == "seqz":
            return [isa.encode_i("sltiu", _parse_reg(args[0]), _parse_reg(args[1]), 1)]
        if mnemonic == "snez":
            return [isa.encode_r("sltu", _parse_reg(args[0]), 0, _parse_reg(args[1]))]
        if mnemonic == "j":
            return [isa.encode_j(0, self._target(args[0], pc))]
        if mnemonic == "jal" and len(args) == 1:
            return [isa.encode_j(1, self._target(args[0], pc))]
        if mnemonic == "call":
            return [isa.encode_j(1, self._target(args[0], pc))]
        if mnemonic == "jr":
            return [isa.encode_i("jalr", 0, _parse_reg(args[0]), 0)]
        if mnemonic == "ret":
            return [isa.encode_i("jalr", 0, 1, 0)]
        if mnemonic == "beqz":
            return [isa.encode_b("beq", _parse_reg(args[0]), 0, self._target(args[1], pc))]
        if mnemonic == "bnez":
            return [isa.encode_b("bne", _parse_reg(args[0]), 0, self._target(args[1], pc))]
        if mnemonic == "ble":
            return [
                isa.encode_b(
                    "bge", _parse_reg(args[1]), _parse_reg(args[0]), self._target(args[2], pc)
                )
            ]
        if mnemonic == "bgt":
            return [
                isa.encode_b(
                    "blt", _parse_reg(args[1]), _parse_reg(args[0]), self._target(args[2], pc)
                )
            ]
        if mnemonic == "ecall":
            return [isa.encode_ecall()]

        # Real instructions.
        if mnemonic in isa.R_TYPE:
            rd, rs1, rs2 = (_parse_reg(a) for a in args)
            return [isa.encode_r(mnemonic, rd, rs1, rs2)]
        if mnemonic in isa.SHIFT_IMM:
            return [
                isa.encode_shift(
                    mnemonic, _parse_reg(args[0]), _parse_reg(args[1]), _parse_int(args[2])
                )
            ]
        if mnemonic in ("lw",):
            rd = _parse_reg(args[0])
            m = _MEM_OPERAND.match(args[1].replace(" ", ""))
            if m is None:
                raise AsmError(f"bad memory operand {args[1]!r}")
            return [isa.encode_i("lw", rd, _parse_reg(m.group(2)), self._resolve_or_int(m.group(1)))]
        if mnemonic in ("sw",):
            rs2 = _parse_reg(args[0])
            m = _MEM_OPERAND.match(args[1].replace(" ", ""))
            if m is None:
                raise AsmError(f"bad memory operand {args[1]!r}")
            return [isa.encode_s("sw", rs2, _parse_reg(m.group(2)), self._resolve_or_int(m.group(1)))]
        if mnemonic == "jalr":
            if len(args) == 1:
                return [isa.encode_i("jalr", 1, _parse_reg(args[0]), 0)]
            return [isa.encode_i("jalr", _parse_reg(args[0]), _parse_reg(args[1]), _parse_int(args[2]))]
        if mnemonic in isa.I_TYPE:
            return [
                isa.encode_i(
                    mnemonic, _parse_reg(args[0]), _parse_reg(args[1]), self._resolve_or_int(args[2])
                )
            ]
        if mnemonic in isa.B_TYPE:
            return [
                isa.encode_b(
                    mnemonic, _parse_reg(args[0]), _parse_reg(args[1]), self._target(args[2], pc)
                )
            ]
        if mnemonic in ("lui", "auipc"):
            return [isa.encode_u(mnemonic, _parse_reg(args[0]), _parse_int(args[1]))]
        if mnemonic == "jal":
            return [isa.encode_j(_parse_reg(args[0]), self._target(args[1], pc))]
        raise AsmError(f"unknown mnemonic {mnemonic!r}")

    def _resolve_or_int(self, token: str) -> int:
        token = token.strip()
        if token in self.labels:
            return self.labels[token]
        return _parse_int(token)


def assemble(source: str) -> AsmResult:
    """Assemble RV32 source text into 32-bit words."""
    return Assembler().assemble(source)
