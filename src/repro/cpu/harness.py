"""Benchmark harness: assemble, simulate, verify.

``run_on_iss`` / ``run_on_rtl`` execute one benchmark on the golden model
or the RTL core; ``verify_benchmark`` cross-checks both against the
Python-computed expected checksum.  The Fig. 5 overhead benchmark
(``benchmarks/bench_fig5_overhead.py``) builds on these.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import compile as compile_design
from ..sim import Simulator
from .assembler import assemble
from .cpu import RV32Core
from .golden import IssState, run_program
from .programs import Benchmark


@dataclass(slots=True)
class RtlRun:
    """Outcome of an RTL simulation of one benchmark."""

    name: str
    tohost: int
    cycles: int
    instret: int
    exit_code: int | None


def run_on_iss(bench: Benchmark, max_instructions: int = 2_000_000) -> IssState:
    """Execute on the golden-model ISS."""
    words = assemble(bench.source).words
    return run_program(words, max_instructions)


def build_rtl(bench: Benchmark, debug: bool = False, mem_words: int = 8192):
    """Compile the CPU with the benchmark preloaded.  ``debug=True`` builds
    the unoptimized (-O0 analog) netlist of paper Sec. 4.1."""
    words = assemble(bench.source).words
    return compile_design(RV32Core(words, mem_words), debug=debug)


def run_on_rtl(
    bench: Benchmark,
    debug: bool = False,
    max_cycles: int = 200_000,
    sim: Simulator | None = None,
) -> RtlRun:
    """Execute on the RTL core (optionally reusing a prepared simulator)."""
    if sim is None:
        design = build_rtl(bench, debug)
        sim = Simulator(design.low)
    sim.reset()
    exit_code = sim.run(max_cycles)
    return RtlRun(
        name=bench.name,
        tohost=sim.peek("tohost"),
        cycles=sim.get_time(),
        instret=sim.peek("instret"),
        exit_code=exit_code,
    )


def verify_benchmark(bench: Benchmark) -> RtlRun:
    """Run on both ISS and RTL; assert both match the expected checksum."""
    iss = run_on_iss(bench)
    if iss.tohost != bench.expected:
        raise AssertionError(
            f"{bench.name}: ISS checksum {iss.tohost} != expected {bench.expected}"
        )
    run = run_on_rtl(bench)
    if run.exit_code is None:
        raise AssertionError(f"{bench.name}: RTL did not halt")
    if run.tohost != bench.expected:
        raise AssertionError(
            f"{bench.name}: RTL checksum {run.tohost} != expected {bench.expected}"
        )
    return run
