"""RV32I (+ M multiply/divide) instruction encodings.

Shared by the assembler, the golden-model ISS, and the tests that check
encode/decode round trips.  Only the subset the benchmark suite needs is
implemented; unsupported encodings raise.
"""

from __future__ import annotations

from dataclasses import dataclass

# Opcodes
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_REG = 0b0110011
OP_SYSTEM = 0b1110011

#: name -> (opcode, funct3, funct7) for R-type
R_TYPE = {
    "add": (OP_REG, 0b000, 0b0000000),
    "sub": (OP_REG, 0b000, 0b0100000),
    "sll": (OP_REG, 0b001, 0b0000000),
    "slt": (OP_REG, 0b010, 0b0000000),
    "sltu": (OP_REG, 0b011, 0b0000000),
    "xor": (OP_REG, 0b100, 0b0000000),
    "srl": (OP_REG, 0b101, 0b0000000),
    "sra": (OP_REG, 0b101, 0b0100000),
    "or": (OP_REG, 0b110, 0b0000000),
    "and": (OP_REG, 0b111, 0b0000000),
    # M extension
    "mul": (OP_REG, 0b000, 0b0000001),
    "mulh": (OP_REG, 0b001, 0b0000001),
    "mulhsu": (OP_REG, 0b010, 0b0000001),
    "mulhu": (OP_REG, 0b011, 0b0000001),
    "div": (OP_REG, 0b100, 0b0000001),
    "divu": (OP_REG, 0b101, 0b0000001),
    "rem": (OP_REG, 0b110, 0b0000001),
    "remu": (OP_REG, 0b111, 0b0000001),
}

#: name -> (opcode, funct3) for I-type ALU
I_TYPE = {
    "addi": (OP_IMM, 0b000),
    "slti": (OP_IMM, 0b010),
    "sltiu": (OP_IMM, 0b011),
    "xori": (OP_IMM, 0b100),
    "ori": (OP_IMM, 0b110),
    "andi": (OP_IMM, 0b111),
    "jalr": (OP_JALR, 0b000),
    "lw": (OP_LOAD, 0b010),
}

#: shift-immediate instructions (I-type with funct7 in imm[11:5])
SHIFT_IMM = {
    "slli": (0b001, 0b0000000),
    "srli": (0b101, 0b0000000),
    "srai": (0b101, 0b0100000),
}

S_TYPE = {"sw": (OP_STORE, 0b010)}

B_TYPE = {
    "beq": 0b000,
    "bne": 0b001,
    "blt": 0b100,
    "bge": 0b101,
    "bltu": 0b110,
    "bgeu": 0b111,
}

REG_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22,
    "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}
for _i in range(32):
    REG_NAMES[f"x{_i}"] = _i


class EncodingError(Exception):
    """Raised on malformed operands or unsupported instructions."""


def _check_reg(r: int) -> int:
    if not 0 <= r < 32:
        raise EncodingError(f"register x{r} out of range")
    return r


def _fit_signed(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{what} {value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


def encode_r(name: str, rd: int, rs1: int, rs2: int) -> int:
    opcode, f3, f7 = R_TYPE[name]
    return (
        (f7 << 25) | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15)
        | (f3 << 12) | (_check_reg(rd) << 7) | opcode
    )


def encode_i(name: str, rd: int, rs1: int, imm: int) -> int:
    opcode, f3 = I_TYPE[name]
    imm12 = _fit_signed(imm, 12, "immediate")
    return (
        (imm12 << 20) | (_check_reg(rs1) << 15) | (f3 << 12)
        | (_check_reg(rd) << 7) | opcode
    )


def encode_shift(name: str, rd: int, rs1: int, shamt: int) -> int:
    f3, f7 = SHIFT_IMM[name]
    if not 0 <= shamt < 32:
        raise EncodingError(f"shift amount {shamt} out of range")
    return (
        (f7 << 25) | (shamt << 20) | (_check_reg(rs1) << 15) | (f3 << 12)
        | (_check_reg(rd) << 7) | OP_IMM
    )


def encode_s(name: str, rs2: int, rs1: int, imm: int) -> int:
    opcode, f3 = S_TYPE[name]
    imm12 = _fit_signed(imm, 12, "store offset")
    return (
        ((imm12 >> 5) << 25) | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15)
        | (f3 << 12) | ((imm12 & 0x1F) << 7) | opcode
    )


def encode_b(name: str, rs1: int, rs2: int, offset: int) -> int:
    f3 = B_TYPE[name]
    if offset % 2:
        raise EncodingError(f"branch offset {offset} misaligned")
    imm = _fit_signed(offset, 13, "branch offset")
    return (
        (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25)
        | (_check_reg(rs2) << 20) | (_check_reg(rs1) << 15) | (f3 << 12)
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | OP_BRANCH
    )


def encode_u(name: str, rd: int, imm: int) -> int:
    opcode = OP_LUI if name == "lui" else OP_AUIPC
    if not 0 <= imm < (1 << 20):
        raise EncodingError(f"upper immediate {imm} out of range")
    return (imm << 12) | (_check_reg(rd) << 7) | opcode


def encode_j(rd: int, offset: int) -> int:
    if offset % 2:
        raise EncodingError(f"jump offset {offset} misaligned")
    imm = _fit_signed(offset, 21, "jump offset")
    return (
        (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12)
        | (_check_reg(rd) << 7) | OP_JAL
    )


def encode_ecall() -> int:
    return OP_SYSTEM  # imm=0, rs1=0, f3=0, rd=0


@dataclass(frozen=True, slots=True)
class Decoded:
    """Fields of a fetched instruction (for the ISS and tests)."""

    opcode: int
    rd: int
    funct3: int
    rs1: int
    rs2: int
    funct7: int
    imm_i: int
    imm_s: int
    imm_b: int
    imm_u: int
    imm_j: int


def _sext(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def decode(word: int) -> Decoded:
    """Split a 32-bit instruction into its fields (immediates signed)."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    imm_i = _sext(word >> 20, 12)
    imm_s = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
    imm_b = _sext(
        (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11)
        | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1),
        13,
    )
    imm_u = word >> 12
    imm_j = _sext(
        (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12)
        | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1),
        21,
    )
    return Decoded(opcode, rd, funct3, rs1, rs2, funct7, imm_i, imm_s, imm_b, imm_u, imm_j)
