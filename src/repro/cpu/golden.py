"""A golden-model instruction set simulator (ISS) for RV32I+M.

This is the *functional model* the RTL CPU is checked against — the same
role RocketChip's functional model plays in the paper's FPU case study
("the FPU output mismatches with the functional model", Sec. 4.2).
Differential tests run random programs on both the ISS and the RTL core and
compare architectural state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import isa
from .isa import decode

#: Word-aligned store address that acts as the ``tohost`` device: writing
#: here reports the benchmark's result checksum (RISC-V test convention).
TOHOST_ADDR = 0x0000_4000

_MASK32 = 0xFFFFFFFF


def _s32(x: int) -> int:
    return x - (1 << 32) if x & 0x8000_0000 else x


class IssError(Exception):
    """Raised on unsupported instructions or runaway execution."""


@dataclass(slots=True)
class IssState:
    """Architectural state + simple execution telemetry."""

    regs: list[int] = field(default_factory=lambda: [0] * 32)
    pc: int = 0
    memory: dict[int, int] = field(default_factory=dict)  # word addr -> word
    tohost: int | None = None
    halted: bool = False
    instret: int = 0


class Iss:
    """Execute RV32I(+M) programs over a sparse word-addressed memory."""

    def __init__(self, program: list[int], max_instructions: int = 2_000_000):
        self.program = list(program)
        self.max_instructions = max_instructions
        self.state = IssState()
        for i, word in enumerate(program):
            self.state.memory[i] = word & _MASK32

    # -- memory ----------------------------------------------------------

    def _load_word(self, addr: int) -> int:
        if addr % 4:
            raise IssError(f"misaligned load at {addr:#x}")
        return self.state.memory.get(addr // 4, 0)

    def _store_word(self, addr: int, value: int) -> None:
        if addr % 4:
            raise IssError(f"misaligned store at {addr:#x}")
        value &= _MASK32
        if addr == TOHOST_ADDR:
            self.state.tohost = value
        self.state.memory[addr // 4] = value

    # -- execution ----------------------------------------------------------

    def run(self) -> IssState:
        """Run until ``ecall`` or the instruction budget is exhausted."""
        st = self.state
        for _ in range(self.max_instructions):
            if st.halted:
                return st
            self.step()
        raise IssError(f"no ecall within {self.max_instructions} instructions")

    def step(self) -> None:
        st = self.state
        word = st.memory.get(st.pc // 4, 0)
        d = decode(word)
        st.instret += 1
        next_pc = (st.pc + 4) & _MASK32
        rs1 = st.regs[d.rs1]
        rs2 = st.regs[d.rs2]
        rd_val: int | None = None

        op = d.opcode
        if op == isa.OP_LUI:
            rd_val = (d.imm_u << 12) & _MASK32
        elif op == isa.OP_AUIPC:
            rd_val = (st.pc + (d.imm_u << 12)) & _MASK32
        elif op == isa.OP_JAL:
            rd_val = next_pc
            next_pc = (st.pc + d.imm_j) & _MASK32
        elif op == isa.OP_JALR:
            rd_val = next_pc
            next_pc = (rs1 + d.imm_i) & _MASK32 & ~1
        elif op == isa.OP_BRANCH:
            taken = self._branch_taken(d.funct3, rs1, rs2)
            if taken:
                next_pc = (st.pc + d.imm_b) & _MASK32
        elif op == isa.OP_LOAD:
            if d.funct3 != 0b010:
                raise IssError(f"unsupported load funct3 {d.funct3}")
            rd_val = self._load_word((rs1 + d.imm_i) & _MASK32)
        elif op == isa.OP_STORE:
            if d.funct3 != 0b010:
                raise IssError(f"unsupported store funct3 {d.funct3}")
            self._store_word((rs1 + d.imm_s) & _MASK32, rs2)
        elif op == isa.OP_IMM:
            rd_val = self._alu_imm(d, rs1)
        elif op == isa.OP_REG:
            rd_val = self._alu_reg(d, rs1, rs2)
        elif op == isa.OP_SYSTEM:
            st.halted = True
        else:
            raise IssError(f"unsupported opcode {op:#09b} at pc {st.pc:#x}")

        if rd_val is not None and d.rd != 0:
            st.regs[d.rd] = rd_val & _MASK32
        st.pc = next_pc

    @staticmethod
    def _branch_taken(funct3: int, rs1: int, rs2: int) -> bool:
        if funct3 == isa.B_TYPE["beq"]:
            return rs1 == rs2
        if funct3 == isa.B_TYPE["bne"]:
            return rs1 != rs2
        if funct3 == isa.B_TYPE["blt"]:
            return _s32(rs1) < _s32(rs2)
        if funct3 == isa.B_TYPE["bge"]:
            return _s32(rs1) >= _s32(rs2)
        if funct3 == isa.B_TYPE["bltu"]:
            return rs1 < rs2
        if funct3 == isa.B_TYPE["bgeu"]:
            return rs1 >= rs2
        raise IssError(f"unsupported branch funct3 {funct3}")

    @staticmethod
    def _alu_imm(d, rs1: int) -> int:
        f3 = d.funct3
        imm = d.imm_i
        if f3 == 0b000:
            return rs1 + imm
        if f3 == 0b010:
            return int(_s32(rs1) < imm)
        if f3 == 0b011:
            return int(rs1 < (imm & _MASK32))
        if f3 == 0b100:
            return rs1 ^ (imm & _MASK32)
        if f3 == 0b110:
            return rs1 | (imm & _MASK32)
        if f3 == 0b111:
            return rs1 & (imm & _MASK32)
        shamt = d.rs2
        if f3 == 0b001:
            return rs1 << shamt
        if f3 == 0b101:
            if d.funct7 == 0b0100000:
                return _s32(rs1) >> shamt
            return rs1 >> shamt
        raise IssError(f"unsupported OP-IMM funct3 {f3}")

    @staticmethod
    def _alu_reg(d, rs1: int, rs2: int) -> int:
        f3, f7 = d.funct3, d.funct7
        if f7 == 0b0000001:  # M extension
            a, b = _s32(rs1), _s32(rs2)
            if f3 == 0b000:
                return a * b
            if f3 == 0b001:
                return (a * b) >> 32
            if f3 == 0b010:
                return (a * rs2) >> 32
            if f3 == 0b011:
                return (rs1 * rs2) >> 32
            if f3 == 0b100:  # div
                if b == 0:
                    return -1
                q = abs(a) // abs(b)
                return -q if (a < 0) != (b < 0) else q
            if f3 == 0b101:  # divu
                return _MASK32 if rs2 == 0 else rs1 // rs2
            if f3 == 0b110:  # rem
                if b == 0:
                    return a
                r = abs(a) % abs(b)
                return -r if a < 0 else r
            if f3 == 0b111:  # remu
                return rs1 if rs2 == 0 else rs1 % rs2
        if f3 == 0b000:
            return rs1 - rs2 if f7 == 0b0100000 else rs1 + rs2
        if f3 == 0b001:
            return rs1 << (rs2 & 31)
        if f3 == 0b010:
            return int(_s32(rs1) < _s32(rs2))
        if f3 == 0b011:
            return int(rs1 < rs2)
        if f3 == 0b100:
            return rs1 ^ rs2
        if f3 == 0b101:
            if f7 == 0b0100000:
                return _s32(rs1) >> (rs2 & 31)
            return rs1 >> (rs2 & 31)
        if f3 == 0b110:
            return rs1 | rs2
        if f3 == 0b111:
            return rs1 & rs2
        raise IssError(f"unsupported OP funct3/funct7 {f3}/{f7:#09b}")


def run_program(words: list[int], max_instructions: int = 2_000_000) -> IssState:
    """Assembled words -> final architectural state."""
    return Iss(words, max_instructions).run()
