"""The benchmark programs of paper Fig. 5.

The RocketChip suite's ten benchmarks, reimplemented as RV32 assembly for
our core: multiply, mm, mt-matmul, vvadd, qsort, dhrystone, median, towers,
spmv, mt-vvadd.  Each benchmark computes a checksum, stores it to the
``tohost`` address, and halts with ``ecall``; the expected checksum is
computed independently in Python so both the ISS and the RTL core can be
checked against it.

The ``mt-`` variants are software-interleaved two-"thread" versions (our
core is single-hart; the interleaving preserves the memory access pattern —
see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

from .golden import TOHOST_ADDR

_MASK32 = 0xFFFFFFFF


def _lcg(seed: int):
    """Deterministic data generator shared by program text and golden."""
    state = seed & _MASK32
    while True:
        state = (state * 1103515245 + 12345) & _MASK32
        yield state


def _words(name: str, values: list[int]) -> str:
    lines = [f"{name}:"]
    for i in range(0, len(values), 8):
        chunk = ", ".join(str(v & _MASK32) for v in values[i : i + 8])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


_EPILOGUE = f"""
finish:
    li t0, {TOHOST_ADDR}
    sw a0, 0(t0)
    ecall
"""


@dataclass(frozen=True, slots=True)
class Benchmark:
    """One Fig. 5 workload: assembly source plus its expected checksum."""

    name: str
    source: str
    expected: int


# ---------------------------------------------------------------------------
# multiply — software shift-add multiplication over an array of pairs.
# ---------------------------------------------------------------------------

def _multiply(n: int = 24) -> Benchmark:
    gen = _lcg(7)
    a = [next(gen) % 1000 for _ in range(n)]
    b = [next(gen) % 1000 for _ in range(n)]
    expected = 0
    for x, y in zip(a, b, strict=False):
        expected = (expected + x * y) & _MASK32
    source = f"""
start:
    li sp, 0x7FF0
    li s0, arr_a
    li s1, arr_b
    li s2, {n}
    li s3, 0          # checksum
    li s4, 0          # i
mul_loop:
    slli t0, s4, 2
    add t1, s0, t0
    lw a1, 0(t1)      # a[i]
    add t1, s1, t0
    lw a2, 0(t1)      # b[i]
    # software multiply: a0 = a1 * a2 (shift-add)
    li a0, 0
umul_loop:
    beqz a2, umul_done
    andi t2, a2, 1
    beqz t2, umul_skip
    add a0, a0, a1
umul_skip:
    slli a1, a1, 1
    srli a2, a2, 1
    j umul_loop
umul_done:
    add s3, s3, a0
    addi s4, s4, 1
    blt s4, s2, mul_loop
    mv a0, s3
    j finish
{_EPILOGUE}
{_words("arr_a", a)}
{_words("arr_b", b)}
"""
    return Benchmark("multiply", source, expected)


# ---------------------------------------------------------------------------
# vvadd / mt-vvadd — vector-vector addition (mt: two interleaved halves).
# ---------------------------------------------------------------------------

def _vvadd(n: int = 64, interleaved: bool = False) -> Benchmark:
    gen = _lcg(11 if not interleaved else 13)
    a = [next(gen) % 100000 for _ in range(n)]
    b = [next(gen) % 100000 for _ in range(n)]
    expected = 0
    for x, y in zip(a, b, strict=False):
        expected = (expected + x + y) & _MASK32

    if not interleaved:
        body = """
    li s4, 0
loop:
    slli t0, s4, 2
    add t1, s0, t0
    lw t2, 0(t1)
    add t1, s1, t0
    lw t3, 0(t1)
    add t2, t2, t3
    add s3, s3, t2
    addi s4, s4, 1
    blt s4, s2, loop
"""
    else:
        half = n // 2
        body = f"""
    li s4, 0          # thread 0 index
    li s5, {half}     # thread 1 index
loop:
    # "thread 0" element
    slli t0, s4, 2
    add t1, s0, t0
    lw t2, 0(t1)
    add t1, s1, t0
    lw t3, 0(t1)
    add t2, t2, t3
    add s3, s3, t2
    # "thread 1" element
    slli t0, s5, 2
    add t1, s0, t0
    lw t2, 0(t1)
    add t1, s1, t0
    lw t3, 0(t1)
    add t2, t2, t3
    add s3, s3, t2
    addi s4, s4, 1
    addi s5, s5, 1
    li t0, {half}
    blt s4, t0, loop
"""
    source = f"""
start:
    li sp, 0x7FF0
    li s0, arr_a
    li s1, arr_b
    li s2, {n}
    li s3, 0
{body}
    mv a0, s3
    j finish
{_EPILOGUE}
{_words("arr_a", a)}
{_words("arr_b", b)}
"""
    return Benchmark("mt-vvadd" if interleaved else "vvadd", source, expected)


# ---------------------------------------------------------------------------
# mm / mt-matmul — dense matrix multiply using the M extension.
# ---------------------------------------------------------------------------

def _matmul(n: int = 6, interleaved: bool = False) -> Benchmark:
    gen = _lcg(17 if not interleaved else 19)
    a = [next(gen) % 50 for _ in range(n * n)]
    b = [next(gen) % 50 for _ in range(n * n)]
    c = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = (acc + a[i * n + k] * b[k * n + j]) & _MASK32
            c[i * n + j] = acc
    expected = 0
    for v in c:
        expected = (expected + v) & _MASK32

    # Row order: sequential, or interleaved halves ("two threads").
    if interleaved:
        half = n // 2
        pairs = zip(range(half), range(half, n), strict=False)
        rows = [r for pair in pairs for r in pair]
        rows += list(range(2 * half, n))
    else:
        rows = list(range(n))
    row_list = _words("row_order", rows)

    source = f"""
start:
    li sp, 0x7FF0
    li s0, mat_a
    li s1, mat_b
    li s2, {n}
    li s3, 0          # checksum
    li s6, row_order
    li s7, 0          # row index cursor
row_loop:
    slli t0, s7, 2
    add t0, s6, t0
    lw s4, 0(t0)      # i = row_order[cursor]
    li s5, 0          # j
col_loop:
    li t4, 0          # acc
    li t5, 0          # k
dot_loop:
    # a[i*n + k]
    mul t0, s4, s2
    add t0, t0, t5
    slli t0, t0, 2
    add t0, s0, t0
    lw t1, 0(t0)
    # b[k*n + j]
    mul t0, t5, s2
    add t0, t0, s5
    slli t0, t0, 2
    add t0, s1, t0
    lw t2, 0(t0)
    mul t1, t1, t2
    add t4, t4, t1
    addi t5, t5, 1
    blt t5, s2, dot_loop
    add s3, s3, t4
    addi s5, s5, 1
    blt s5, s2, col_loop
    addi s7, s7, 1
    blt s7, s2, row_loop
    mv a0, s3
    j finish
{_EPILOGUE}
{_words("mat_a", a)}
{_words("mat_b", b)}
{row_list}
"""
    return Benchmark("mt-matmul" if interleaved else "mm", source, expected)


# ---------------------------------------------------------------------------
# qsort — iterative quicksort with an explicit stack of (lo, hi) ranges.
# ---------------------------------------------------------------------------

def _qsort(n: int = 48) -> Benchmark:
    gen = _lcg(23)
    data = [next(gen) % 100000 for _ in range(n)]
    swept = sorted(data)
    expected = 0
    for i, v in enumerate(swept):
        expected = (expected + (i + 1) * v) & _MASK32

    source = f"""
start:
    li sp, 0x7FF0
    li s0, arr        # base
    li s1, {n}
    # push (0, n-1) onto a work stack at 0x6000
    li s2, 0x6000     # stack pointer (grows up, pairs)
    li t0, 0
    sw t0, 0(s2)
    addi t0, s1, -1
    sw t0, 4(s2)
    addi s2, s2, 8
qs_loop:
    li t0, 0x6000
    beq s2, t0, qs_done
    addi s2, s2, -8
    lw s4, 0(s2)      # lo
    lw s5, 4(s2)      # hi
    bge s4, s5, qs_loop
    # partition: pivot = a[hi]
    slli t0, s5, 2
    add t0, s0, t0
    lw s6, 0(t0)      # pivot
    addi s7, s4, -1   # i
    mv s8, s4         # j
part_loop:
    bge s8, s5, part_done
    slli t0, s8, 2
    add t0, s0, t0
    lw t1, 0(t0)      # a[j]
    bgt t1, s6, part_next
    addi s7, s7, 1
    # swap a[i], a[j]
    slli t2, s7, 2
    add t2, s0, t2
    lw t3, 0(t2)
    sw t1, 0(t2)
    sw t3, 0(t0)
part_next:
    addi s8, s8, 1
    j part_loop
part_done:
    addi s7, s7, 1
    # swap a[i], a[hi]
    slli t0, s7, 2
    add t0, s0, t0
    lw t1, 0(t0)
    slli t2, s5, 2
    add t2, s0, t2
    lw t3, 0(t2)
    sw t3, 0(t0)
    sw t1, 0(t2)
    # push (lo, i-1) and (i+1, hi)
    addi t0, s7, -1
    sw s4, 0(s2)
    sw t0, 4(s2)
    addi s2, s2, 8
    addi t0, s7, 1
    sw t0, 0(s2)
    sw s5, 4(s2)
    addi s2, s2, 8
    j qs_loop
qs_done:
    # checksum: sum (i+1)*a[i]
    li s3, 0
    li s4, 0
sum_loop:
    slli t0, s4, 2
    add t0, s0, t0
    lw t1, 0(t0)
    addi t2, s4, 1
    mul t1, t1, t2
    add s3, s3, t1
    addi s4, s4, 1
    blt s4, s1, sum_loop
    mv a0, s3
    j finish
{_EPILOGUE}
{_words("arr", data)}
"""
    return Benchmark("qsort", source, expected)


# ---------------------------------------------------------------------------
# median — 3-tap sliding median filter (RocketChip's median benchmark).
# ---------------------------------------------------------------------------

def _median(n: int = 48) -> Benchmark:
    gen = _lcg(29)
    data = [next(gen) % 10000 for _ in range(n)]
    expected = 0
    for i in range(1, n - 1):
        window = sorted(data[i - 1 : i + 2])
        expected = (expected + window[1]) & _MASK32

    source = f"""
start:
    li sp, 0x7FF0
    li s0, arr
    li s1, {n}
    li s3, 0          # checksum
    li s4, 1          # i
med_loop:
    addi t0, s4, -1
    slli t0, t0, 2
    add t0, s0, t0
    lw t1, 0(t0)      # a[i-1]
    lw t2, 4(t0)      # a[i]
    lw t3, 8(t0)      # a[i+1]
    # median of (t1, t2, t3) -> t4
    # min/max dance: order t1 <= t2
    ble t1, t2, med_1
    mv t5, t1
    mv t1, t2
    mv t2, t5
med_1:
    # now t1 <= t2; median = min(t2, max(t1, t3))
    ble t1, t3, med_2
    mv t3, t1         # max(t1, t3)
med_2:
    ble t3, t2, med_3
    mv t3, t2         # min(t2, .)
med_3:
    add s3, s3, t3
    addi s4, s4, 1
    addi t0, s1, -1
    blt s4, t0, med_loop
    mv a0, s3
    j finish
{_EPILOGUE}
{_words("arr", data)}
"""
    return Benchmark("median", source, expected)


# ---------------------------------------------------------------------------
# towers — recursive Towers of Hanoi (exercises call/ret and the stack).
# ---------------------------------------------------------------------------

def _towers(n: int = 6) -> Benchmark:
    moves: list[tuple[int, int]] = []

    def hanoi(k: int, src: int, dst: int, via: int) -> None:
        if k == 0:
            return
        hanoi(k - 1, src, via, dst)
        moves.append((src, dst))
        hanoi(k - 1, via, dst, src)

    hanoi(n, 0, 2, 1)
    expected = 0
    for src, dst in moves:
        expected = (expected * 3 + src * 5 + dst + 1) & _MASK32

    source = f"""
start:
    li sp, 0x7FF0
    li s3, 0          # checksum accumulator
    li a0, {n}        # disks
    li a1, 0          # from
    li a2, 2          # to
    li a3, 1          # via
    call hanoi
    mv a0, s3
    j finish

# hanoi(a0=n, a1=from, a2=to, a3=via); clobbers t0..t2
hanoi:
    beqz a0, hanoi_ret
    addi sp, sp, -20
    sw ra, 0(sp)
    sw a0, 4(sp)
    sw a1, 8(sp)
    sw a2, 12(sp)
    sw a3, 16(sp)
    # hanoi(n-1, from, via, to)
    addi a0, a0, -1
    mv t0, a2
    mv a2, a3
    mv a3, t0
    call hanoi
    lw a0, 4(sp)
    lw a1, 8(sp)
    lw a2, 12(sp)
    lw a3, 16(sp)
    # record move: chk = chk*3 + from*5 + to + 1
    slli t0, s3, 1
    add t0, t0, s3    # chk*3
    slli t1, a1, 2
    add t1, t1, a1    # from*5
    add t0, t0, t1
    add t0, t0, a2
    addi s3, t0, 1
    # hanoi(n-1, via, to, from)
    addi a0, a0, -1
    mv t0, a1
    mv a1, a3
    mv a3, t0
    call hanoi
    lw ra, 0(sp)
    addi sp, sp, 20
hanoi_ret:
    ret
{_EPILOGUE}
"""
    return Benchmark("towers", source, expected)


# ---------------------------------------------------------------------------
# spmv — sparse matrix-vector multiply (CSR).
# ---------------------------------------------------------------------------

def _spmv(rows: int = 16, nnz_per_row: int = 4) -> Benchmark:
    gen = _lcg(31)
    row_ptr = [0]
    col_idx: list[int] = []
    vals: list[int] = []
    for _r in range(rows):
        cols = sorted({next(gen) % rows for _ in range(nnz_per_row)})
        for c in cols:
            col_idx.append(c)
            vals.append(next(gen) % 100)
        row_ptr.append(len(col_idx))
    x = [next(gen) % 100 for _ in range(rows)]

    expected = 0
    for r in range(rows):
        acc = 0
        for k in range(row_ptr[r], row_ptr[r + 1]):
            acc = (acc + vals[k] * x[col_idx[k]]) & _MASK32
        expected = (expected + acc) & _MASK32

    source = f"""
start:
    li sp, 0x7FF0
    li s0, row_ptr
    li s1, col_idx
    li s2, vals
    li s6, vec_x
    li s3, 0          # checksum
    li s4, 0          # row
spmv_row:
    slli t0, s4, 2
    add t0, s0, t0
    lw s7, 0(t0)      # k = row_ptr[r]
    lw s8, 4(t0)      # end = row_ptr[r+1]
    li t4, 0          # acc
spmv_inner:
    bge s7, s8, spmv_row_done
    slli t0, s7, 2
    add t1, s1, t0
    lw t2, 0(t1)      # col
    add t1, s2, t0
    lw t3, 0(t1)      # val
    slli t2, t2, 2
    add t2, s6, t2
    lw t2, 0(t2)      # x[col]
    mul t3, t3, t2
    add t4, t4, t3
    addi s7, s7, 1
    j spmv_inner
spmv_row_done:
    add s3, s3, t4
    addi s4, s4, 1
    li t0, {rows}
    blt s4, t0, spmv_row
    mv a0, s3
    j finish
{_EPILOGUE}
{_words("row_ptr", row_ptr)}
{_words("col_idx", col_idx)}
{_words("vals", vals)}
{_words("vec_x", x)}
"""
    return Benchmark("spmv", source, expected)


# ---------------------------------------------------------------------------
# dhrystone — synthetic integer mix (simplified kernel; see DESIGN.md).
# ---------------------------------------------------------------------------

def _dhrystone(iterations: int = 20) -> Benchmark:
    # Python golden model of the same kernel.
    buf = [0] * 8
    chk = 0
    for it in range(1, iterations + 1):
        v = (it * 7 + 3) & _MASK32
        for i in range(8):
            buf[i] = (v + i) & _MASK32
        acc = 0
        for i in range(8):
            acc = (acc + buf[i] * 2) & _MASK32
        chk = (chk + acc) & _MASK32 if acc & 1 else (chk ^ acc) & _MASK32
        chk = (chk + ((v << 3) & _MASK32) + (v >> 2)) & _MASK32

    source = f"""
start:
    li sp, 0x7FF0
    li s0, buffer
    li s1, {iterations}
    li s3, 0          # chk
    li s4, 1          # it
dhry_loop:
    # v = it*7 + 3
    slli t0, s4, 3
    sub t0, t0, s4
    addi s5, t0, 3
    # fill buffer: buf[i] = v + i
    li t1, 0
fill_loop:
    add t2, s5, t1
    slli t3, t1, 2
    add t3, s0, t3
    sw t2, 0(t3)
    addi t1, t1, 1
    li t4, 8
    blt t1, t4, fill_loop
    # acc = sum buf[i]*2
    li t5, 0
    li t1, 0
acc_loop:
    slli t3, t1, 2
    add t3, s0, t3
    lw t2, 0(t3)
    slli t2, t2, 1
    add t5, t5, t2
    addi t1, t1, 1
    li t4, 8
    blt t1, t4, acc_loop
    # branchy mix
    andi t0, t5, 1
    beqz t0, dhry_xor
    add s3, s3, t5
    j dhry_tail
dhry_xor:
    xor s3, s3, t5
dhry_tail:
    slli t0, s5, 3
    add s3, s3, t0
    srli t0, s5, 2
    add s3, s3, t0
    addi s4, s4, 1
    ble s4, s1, dhry_loop
    mv a0, s3
    j finish
{_EPILOGUE}
buffer:
    .space 32
"""
    return Benchmark("dhrystone", source, chk)


def build_suite() -> list[Benchmark]:
    """The ten Fig. 5 benchmarks, in the paper's display order."""
    return [
        _multiply(),
        _matmul(),
        _matmul(interleaved=True),
        _vvadd(),
        _qsort(),
        _dhrystone(),
        _median(),
        _towers(),
        _spmv(),
        _vvadd(interleaved=True),
    ]


def benchmark_by_name(name: str) -> Benchmark:
    for b in build_suite():
        if b.name == name:
            return b
    raise KeyError(f"no benchmark named {name!r}")
